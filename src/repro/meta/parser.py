"""Recursive-descent parser for the UHL C/C++ subset.

Grammar (C subset, full expression precedence):

    unit      := (preproc | function | decl_stmt)*
    function  := type IDENT '(' params ')' (block | ';')
    params    := [param (',' param)*]        param := type IDENT
    type      := 'const'? scalar '*'*
    stmt      := block | decl_stmt | for | while | do-while | if
               | return | break | continue | ';' | expr ';'
    pragmas written before a statement attach to that statement.

Expression precedence (low to high): assignment, ternary, ||, &&,
bitwise |, ^, &, equality, relational, shift, additive, multiplicative,
unary, postfix, primary.
"""

from __future__ import annotations

from typing import List, Optional

from repro.meta.ast_nodes import (
    Assign, BinaryOp, BoolLit, BreakStmt, Call, Cast, CompoundStmt,
    ContinueStmt, CType, DeclStmt, DoWhileStmt, Expr, ExprStmt, FloatLit,
    ForStmt, FunctionDecl, Ident, IfStmt, Index, IntLit, Node, NullStmt,
    ParamDecl, Pragma, ReturnStmt, SourceSpan, Stmt, StringLit, Ternary,
    TranslationUnit, UnaryOp, VarDecl, WhileStmt, set_parents,
)
from repro.meta.lexer import Lexer, Token


class ParseError(Exception):
    def __init__(self, message: str, token: Token):
        super().__init__(f"{token.line}:{token.col}: {message} "
                         f"(at {token.kind} {token.text!r})")
        self.token = token


_SCALARS = ("void", "bool", "int", "long", "float", "double")


class Parser:
    def __init__(self, source: str):
        self.tokens = Lexer(source).tokenize()
        self.pos = 0

    # -- token stream helpers ------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self._peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if self._check(kind, text):
            return self._advance()
        want = text if text is not None else kind
        raise ParseError(f"expected {want!r}", self._peek())

    def _span(self, node: Node, tok: Token) -> Node:
        node.span = SourceSpan(tok.line, tok.col)
        return node

    # -- type parsing -----------------------------------------------------------
    def _at_type(self) -> bool:
        tok = self._peek()
        if tok.kind != "KEYWORD":
            return False
        if tok.text == "const":
            return True
        return tok.text in _SCALARS

    def _parse_type(self) -> CType:
        const = bool(self._accept("KEYWORD", "const"))
        tok = self._peek()
        if tok.kind != "KEYWORD" or tok.text not in _SCALARS:
            raise ParseError("expected type name", tok)
        self._advance()
        base = tok.text
        # allow 'const' after the base as well (C allows both orders)
        const = const or bool(self._accept("KEYWORD", "const"))
        pointers = 0
        while self._accept("PUNCT", "*"):
            pointers += 1
            const = const or bool(self._accept("KEYWORD", "const"))
        return CType(base, pointers, const)

    # -- top level ------------------------------------------------------------
    def parse_unit(self) -> TranslationUnit:
        unit = TranslationUnit()
        pending_pragmas: List[Pragma] = []
        while not self._check("EOF"):
            if self._check("PREPROC"):
                unit.preamble.append(self._advance().text)
                continue
            if self._check("PRAGMA"):
                tok = self._advance()
                pending_pragmas.append(
                    self._span(Pragma(tok.text), tok))  # type: ignore[arg-type]
                continue
            decl = self._parse_top_decl()
            if pending_pragmas and isinstance(decl, Stmt):
                decl.pragmas = pending_pragmas
                pending_pragmas = []
            unit.decls.append(decl)
        set_parents(unit)
        return unit

    def _parse_top_decl(self) -> Node:
        start = self._peek()
        ctype = self._parse_type()
        name = self._expect("IDENT").text
        if self._check("PUNCT", "("):
            return self._parse_function(ctype, name, start)
        # global variable declaration
        decls = [self._parse_declarator(ctype, name)]
        while self._accept("PUNCT", ","):
            nm = self._expect("IDENT").text
            decls.append(self._parse_declarator(ctype, nm))
        self._expect("PUNCT", ";")
        return self._span(DeclStmt(decls), start)

    def _parse_function(self, rtype: CType, name: str, start: Token) -> FunctionDecl:
        self._expect("PUNCT", "(")
        params: List[ParamDecl] = []
        if not self._check("PUNCT", ")"):
            if self._check("KEYWORD", "void") and self._peek(1).text == ")":
                self._advance()  # f(void)
            else:
                while True:
                    ptok = self._peek()
                    ptype = self._parse_type()
                    pname = self._expect("IDENT").text
                    # tolerate T name[] as pointer
                    if self._accept("PUNCT", "["):
                        self._expect("PUNCT", "]")
                        ptype = ptype.pointer_to()
                    params.append(
                        self._span(ParamDecl(pname, ptype), ptok))  # type: ignore[arg-type]
                    if not self._accept("PUNCT", ","):
                        break
        self._expect("PUNCT", ")")
        body: Optional[CompoundStmt] = None
        if not self._accept("PUNCT", ";"):
            body = self._parse_block()
        return self._span(FunctionDecl(name, rtype, params, body), start)  # type: ignore[return-value]

    # -- statements ---------------------------------------------------------------
    def _parse_block(self) -> CompoundStmt:
        start = self._expect("PUNCT", "{")
        stmts: List[Stmt] = []
        while not self._check("PUNCT", "}"):
            if self._check("EOF"):
                raise ParseError("unterminated block", self._peek())
            stmts.append(self._parse_stmt())
        self._expect("PUNCT", "}")
        return self._span(CompoundStmt(stmts), start)  # type: ignore[return-value]

    def _parse_stmt(self) -> Stmt:
        pragmas: List[Pragma] = []
        while self._check("PRAGMA"):
            tok = self._advance()
            pragmas.append(self._span(Pragma(tok.text), tok))  # type: ignore[arg-type]
        stmt = self._parse_stmt_inner()
        if pragmas:
            stmt.pragmas = pragmas + stmt.pragmas
        return stmt

    def _parse_stmt_inner(self) -> Stmt:
        tok = self._peek()
        if self._check("PUNCT", "{"):
            return self._parse_block()
        if self._check("PUNCT", ";"):
            self._advance()
            return self._span(NullStmt(), tok)  # type: ignore[return-value]
        if self._check("KEYWORD", "for"):
            return self._parse_for()
        if self._check("KEYWORD", "while"):
            return self._parse_while()
        if self._check("KEYWORD", "do"):
            return self._parse_do_while()
        if self._check("KEYWORD", "if"):
            return self._parse_if()
        if self._check("KEYWORD", "return"):
            self._advance()
            expr = None
            if not self._check("PUNCT", ";"):
                expr = self._parse_expr()
            self._expect("PUNCT", ";")
            return self._span(ReturnStmt(expr), tok)  # type: ignore[return-value]
        if self._check("KEYWORD", "break"):
            self._advance()
            self._expect("PUNCT", ";")
            return self._span(BreakStmt(), tok)  # type: ignore[return-value]
        if self._check("KEYWORD", "continue"):
            self._advance()
            self._expect("PUNCT", ";")
            return self._span(ContinueStmt(), tok)  # type: ignore[return-value]
        if self._at_type():
            return self._parse_decl_stmt()
        expr = self._parse_expr()
        self._expect("PUNCT", ";")
        return self._span(ExprStmt(expr), tok)  # type: ignore[return-value]

    def _parse_decl_stmt(self) -> DeclStmt:
        start = self._peek()
        ctype = self._parse_type()
        decls: List[VarDecl] = []
        while True:
            name = self._expect("IDENT").text
            decls.append(self._parse_declarator(ctype, name))
            if not self._accept("PUNCT", ","):
                break
        self._expect("PUNCT", ";")
        return self._span(DeclStmt(decls), start)  # type: ignore[return-value]

    def _parse_declarator(self, ctype: CType, name: str) -> VarDecl:
        array_size: Optional[Expr] = None
        if self._accept("PUNCT", "["):
            array_size = self._parse_expr()
            self._expect("PUNCT", "]")
        init: Optional[Expr] = None
        if self._accept("PUNCT", "="):
            init = self._parse_assignment()
        return VarDecl(name, ctype, array_size, init)

    def _parse_for(self) -> ForStmt:
        start = self._expect("KEYWORD", "for")
        self._expect("PUNCT", "(")
        init: Optional[Stmt] = None
        if not self._check("PUNCT", ";"):
            if self._at_type():
                init = self._parse_decl_stmt()
            else:
                expr = self._parse_expr()
                self._expect("PUNCT", ";")
                init = ExprStmt(expr)
        else:
            self._advance()
        cond: Optional[Expr] = None
        if not self._check("PUNCT", ";"):
            cond = self._parse_expr()
        self._expect("PUNCT", ";")
        inc: Optional[Expr] = None
        if not self._check("PUNCT", ")"):
            inc = self._parse_expr()
        self._expect("PUNCT", ")")
        body = self._parse_stmt()
        return self._span(ForStmt(init, cond, inc, body), start)  # type: ignore[return-value]

    def _parse_while(self) -> WhileStmt:
        start = self._expect("KEYWORD", "while")
        self._expect("PUNCT", "(")
        cond = self._parse_expr()
        self._expect("PUNCT", ")")
        body = self._parse_stmt()
        return self._span(WhileStmt(cond, body), start)  # type: ignore[return-value]

    def _parse_do_while(self) -> DoWhileStmt:
        start = self._expect("KEYWORD", "do")
        body = self._parse_stmt()
        self._expect("KEYWORD", "while")
        self._expect("PUNCT", "(")
        cond = self._parse_expr()
        self._expect("PUNCT", ")")
        self._expect("PUNCT", ";")
        return self._span(DoWhileStmt(body, cond), start)  # type: ignore[return-value]

    def _parse_if(self) -> IfStmt:
        start = self._expect("KEYWORD", "if")
        self._expect("PUNCT", "(")
        cond = self._parse_expr()
        self._expect("PUNCT", ")")
        then = self._parse_stmt()
        els: Optional[Stmt] = None
        if self._accept("KEYWORD", "else"):
            els = self._parse_stmt()
        return self._span(IfStmt(cond, then, els), start)  # type: ignore[return-value]

    # -- expressions -----------------------------------------------------------
    def _parse_expr(self) -> Expr:
        expr = self._parse_assignment()
        # comma operator: fold left; rare, used in for-increments
        while self._check("PUNCT", ",") and self._comma_allowed():
            self._advance()
            rhs = self._parse_assignment()
            expr = BinaryOp(",", expr, rhs)
        return expr

    def _comma_allowed(self) -> bool:
        # Commas inside call argument lists are handled by _parse_call;
        # at expression level, allow comma only in for-increment context,
        # which callers signal by invoking _parse_expr directly.  We keep
        # it permissive: the parser is only used on UHL sources.
        return False

    def _parse_assignment(self) -> Expr:
        lhs = self._parse_ternary()
        tok = self._peek()
        if tok.kind == "PUNCT" and tok.text in Assign.OPS:
            self._advance()
            rhs = self._parse_assignment()
            return self._span(Assign(tok.text, lhs, rhs), tok)  # type: ignore[return-value]
        return lhs

    def _parse_ternary(self) -> Expr:
        cond = self._parse_binary(0)
        if self._accept("PUNCT", "?"):
            then = self._parse_assignment()
            self._expect("PUNCT", ":")
            els = self._parse_assignment()
            return Ternary(cond, then, els)
        return cond

    _BINARY_LEVELS = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(self._BINARY_LEVELS):
            return self._parse_unary()
        ops = self._BINARY_LEVELS[level]
        lhs = self._parse_binary(level + 1)
        while True:
            tok = self._peek()
            if tok.kind == "PUNCT" and tok.text in ops:
                self._advance()
                rhs = self._parse_binary(level + 1)
                lhs = self._span(BinaryOp(tok.text, lhs, rhs), tok)  # type: ignore[assignment]
            else:
                return lhs

    def _parse_unary(self) -> Expr:
        tok = self._peek()
        if tok.kind == "PUNCT" and tok.text in ("-", "+", "!", "~", "*", "&", "++", "--"):
            self._advance()
            operand = self._parse_unary()
            if tok.text == "+":
                return operand
            return self._span(UnaryOp(tok.text, operand, prefix=True), tok)  # type: ignore[return-value]
        # cast: '(' type ')' unary
        if tok.kind == "PUNCT" and tok.text == "(":
            nxt = self._peek(1)
            if nxt.kind == "KEYWORD" and (nxt.text in _SCALARS or nxt.text == "const"):
                self._advance()  # '('
                ctype = self._parse_type()
                self._expect("PUNCT", ")")
                expr = self._parse_unary()
                return self._span(Cast(ctype, expr), tok)  # type: ignore[return-value]
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if self._check("PUNCT", "["):
                self._advance()
                index = self._parse_expr()
                self._expect("PUNCT", "]")
                expr = self._span(Index(expr, index), tok)  # type: ignore[assignment]
            elif self._check("PUNCT", "++") or self._check("PUNCT", "--"):
                self._advance()
                expr = self._span(UnaryOp(tok.text, expr, prefix=False), tok)  # type: ignore[assignment]
            else:
                return expr

    def _parse_primary(self) -> Expr:
        tok = self._peek()
        if tok.kind == "INT":
            self._advance()
            text = tok.text.rstrip("uUlL")
            value = int(text, 0)
            suffix = tok.text[len(text):]
            return self._span(IntLit(value, suffix), tok)  # type: ignore[return-value]
        if tok.kind == "FLOAT":
            self._advance()
            body = tok.text.rstrip("fFlL")
            suffix = tok.text[len(body):]
            sfx = "f" if "f" in suffix.lower() else ""
            return self._span(FloatLit(float(body), sfx, text=tok.text), tok)  # type: ignore[return-value]
        if tok.kind == "STRING":
            self._advance()
            return self._span(StringLit(tok.text[1:-1]), tok)  # type: ignore[return-value]
        if tok.kind == "KEYWORD" and tok.text in ("true", "false"):
            self._advance()
            return self._span(BoolLit(tok.text == "true"), tok)  # type: ignore[return-value]
        if tok.kind == "IDENT":
            self._advance()
            if self._check("PUNCT", "("):
                return self._parse_call(tok)
            return self._span(Ident(tok.text), tok)  # type: ignore[return-value]
        if self._accept("PUNCT", "("):
            expr = self._parse_expr()
            self._expect("PUNCT", ")")
            return expr
        raise ParseError("expected expression", tok)

    def _parse_call(self, name_tok: Token) -> Call:
        self._expect("PUNCT", "(")
        args: List[Expr] = []
        if not self._check("PUNCT", ")"):
            while True:
                args.append(self._parse_assignment())
                if not self._accept("PUNCT", ","):
                    break
        self._expect("PUNCT", ")")
        return self._span(Call(name_tok.text, args), name_tok)  # type: ignore[return-value]


def parse(source: str) -> TranslationUnit:
    """Parse a UHL source string into a :class:`TranslationUnit`."""
    return Parser(source).parse_unit()


def parse_expr(source: str) -> Expr:
    """Parse a single expression (used by instrumentation helpers)."""
    parser = Parser(source)
    expr = parser._parse_expr()
    if not parser._check("EOF"):
        raise ParseError("trailing input after expression", parser._peek())
    return set_parents(expr)  # type: ignore[return-value]


def parse_stmt(source: str) -> Stmt:
    """Parse a single statement (used by instrumentation helpers)."""
    parser = Parser(source)
    stmt = parser._parse_stmt()
    if not parser._check("EOF"):
        raise ParseError("trailing input after statement", parser._peek())
    return set_parents(stmt)  # type: ignore[return-value]
