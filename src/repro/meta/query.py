"""AST query engine.

Reproduces the Artisan query idiom from Fig. 2 of the paper::

    loops = query(for all loop, fn in ast:
                      loop.isForStmt
                      and fn.name == kernel_name
                      and fn.encloses(loop)
                      and loop.is_outermost)

In this implementation a query names one or more *row variables*, each
bound to a node type, and a predicate over the bound nodes; the engine
enumerates the cross product of candidate nodes and returns a match
table.  The example above becomes::

    matches = (Query(ast)
               .row("loop", ForStmt)
               .row("fn", FunctionDecl)
               .where(lambda loop, fn: fn.name == kernel_name
                                       and fn.encloses(loop)
                                       and loop.is_outermost)
               .all())
    for m in matches:
        m["loop"], m["fn"]

Convenience wrappers cover the common single-variable cases used by the
codified design-flow tasks.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Type

from repro.meta.ast_nodes import (
    Assign, Call, ForStmt, FunctionDecl, Ident, Index, Node,
)


class Match(dict):
    """One query result: a mapping from row-variable name to node."""

    def __getattr__(self, name: str) -> Node:
        try:
            return self[name]
        except KeyError as exc:
            raise AttributeError(name) from exc


class Query:
    """Fluent query over the subtree rooted at ``root``."""

    def __init__(self, root: Node):
        self.root = root
        self._rows: List = []  # (name, node_type)
        self._predicates: List[Callable[..., bool]] = []

    def row(self, name: str, node_type: Type[Node]) -> "Query":
        """Declare a row variable ranging over nodes of ``node_type``."""
        self._rows.append((name, node_type))
        return self

    def where(self, predicate: Callable[..., bool]) -> "Query":
        """Add a predicate taking the row variables in declaration order."""
        self._predicates.append(predicate)
        return self

    # -- execution ---------------------------------------------------------
    def _candidates(self, node_type: Type[Node]) -> List[Node]:
        return [n for n in self.root.walk() if isinstance(n, node_type)]

    def matches(self) -> Iterator[Match]:
        domains = [self._candidates(t) for _, t in self._rows]
        names = [name for name, _ in self._rows]
        for combo in itertools.product(*domains):
            if all(pred(*combo) for pred in self._predicates):
                yield Match(zip(names, combo))

    def all(self) -> List[Match]:
        return list(self.matches())

    def first(self) -> Optional[Match]:
        return next(self.matches(), None)

    def count(self) -> int:
        return sum(1 for _ in self.matches())


def query(root: Node, *row_specs, where: Optional[Callable[..., bool]] = None
          ) -> List[Match]:
    """One-shot query: ``query(ast, ("loop", ForStmt), where=pred)``."""
    q = Query(root)
    for name, node_type in row_specs:
        q.row(name, node_type)
    if where is not None:
        q.where(where)
    return q.all()


# =========================================================================
# Convenience matchers used across the codified design-flow tasks.
# =========================================================================

def outermost_loops(fn: FunctionDecl) -> List[ForStmt]:
    """Outermost for-loops of ``fn`` -- the Fig. 2 query specialised."""
    return [m.loop for m in (Query(fn)
                             .row("loop", ForStmt)
                             .where(lambda loop: loop.is_outermost)
                             .matches())]


def loops_in(node: Node) -> List[ForStmt]:
    return [n for n in node.walk() if isinstance(n, ForStmt)]


def calls_in(node: Node, name: Optional[str] = None) -> List[Call]:
    return [n for n in node.walk()
            if isinstance(n, Call) and (name is None or n.name == name)]


def idents_in(node: Node) -> List[Ident]:
    return [n for n in node.walk() if isinstance(n, Ident)]


def free_variables(node: Node, declared: Sequence[str] = ()) -> List[str]:
    """Names read/written in ``node`` that are not declared inside it.

    Used by hotspot extraction to compute the parameter list of the
    extracted kernel function.  Order of first appearance is preserved.
    """
    from repro.meta.ast_nodes import DeclStmt

    local = set(declared)
    for n in node.walk():
        if isinstance(n, DeclStmt):
            for d in n.decls:
                local.add(d.name)
    seen: Dict[str, None] = {}
    for ident in idents_in(node):
        if ident.name not in local:
            seen.setdefault(ident.name, None)
    return list(seen)


def written_arrays(node: Node) -> List[str]:
    """Base names of arrays written (``a[i] = ...`` or ``a[i] += ...``)."""
    names: Dict[str, None] = {}
    for n in node.walk():
        if isinstance(n, Assign):
            target = n.target
            while isinstance(target, Index):
                target = target.base
            if isinstance(target, Ident) and isinstance(n.target, Index):
                names.setdefault(target.name, None)
    return list(names)


def read_arrays(node: Node) -> List[str]:
    """Base names of arrays read via subscript anywhere in ``node``."""
    names: Dict[str, None] = {}
    for n in node.walk():
        if isinstance(n, Index):
            base = n.base
            while isinstance(base, Index):
                base = base.base
            if isinstance(base, Ident):
                # written-only positions are filtered by callers that care
                names.setdefault(base.name, None)
    return list(names)
