"""Tokenizer for the UHL C/C++ subset.

Produces a flat token stream with source positions.  ``#pragma`` lines
are kept as single PRAGMA tokens (they attach to the following
statement during parsing), ``#include`` and other preprocessor lines
become PREPROC tokens preserved verbatim in the translation unit's
preamble, and ``//`` / ``/* */`` comments are skipped.
"""

from __future__ import annotations

from typing import Iterator, List, Optional


class LexError(Exception):
    """Raised on malformed input, with 1-based line/column."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


class Token:
    __slots__ = ("kind", "text", "line", "col")

    # kinds: IDENT KEYWORD INT FLOAT STRING CHAR PUNCT PRAGMA PREPROC EOF
    def __init__(self, kind: str, text: str, line: int, col: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.col = col

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


KEYWORDS = frozenset([
    "void", "bool", "int", "long", "float", "double", "const",
    "if", "else", "for", "while", "do", "return", "break", "continue",
    "true", "false",
])

# Longest-first so that '>>=' style prefixes never shadow longer operators.
PUNCTUATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "<<", ">>", "->",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":", ".",
]


class Lexer:
    """Single-pass tokenizer over a source string."""

    def __init__(self, source: str):
        self.src = source
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- low-level cursor --------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.src[i] if i < len(self.src) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.src):
                if self.src[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _error(self, msg: str) -> LexError:
        return LexError(msg, self.line, self.col)

    # -- token production ---------------------------------------------------
    def tokens(self) -> Iterator[Token]:
        while True:
            tok = self.next_token()
            yield tok
            if tok.kind == "EOF":
                return

    def tokenize(self) -> List[Token]:
        return list(self.tokens())

    def next_token(self) -> Token:
        self._skip_trivia()
        line, col = self.line, self.col
        ch = self._peek()

        if ch == "":
            return Token("EOF", "", line, col)

        if ch == "#":
            return self._lex_directive(line, col)

        if ch.isalpha() or ch == "_":
            return self._lex_word(line, col)

        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(line, col)

        if ch == '"':
            return self._lex_string(line, col)

        if ch == "'":
            return self._lex_char(line, col)

        for punct in PUNCTUATORS:
            if self.src.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token("PUNCT", punct, line, col)

        raise self._error(f"unexpected character {ch!r}")

    # -- trivia ---------------------------------------------------------------
    def _skip_trivia(self) -> None:
        while True:
            ch = self._peek()
            if ch != "" and ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._peek() not in ("", "\n"):
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._peek() == "":
                        raise self._error("unterminated block comment")
                    self._advance()
                self._advance(2)
            else:
                return

    # -- token classes ---------------------------------------------------------
    def _lex_directive(self, line: int, col: int) -> Token:
        start = self.pos
        while self._peek() not in ("", "\n"):
            # Support line continuation in pragmas.
            if self._peek() == "\\" and self._peek(1) == "\n":
                self._advance(2)
                continue
            self._advance()
        text = self.src[start:self.pos].replace("\\\n", " ").strip()
        body = text[1:].strip()  # drop '#'
        if body.startswith("pragma"):
            return Token("PRAGMA", body[len("pragma"):].strip(), line, col)
        return Token("PREPROC", text, line, col)

    def _lex_word(self, line: int, col: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.src[start:self.pos]
        kind = "KEYWORD" if text in KEYWORDS else "IDENT"
        return Token(kind, text, line, col)

    def _lex_number(self, line: int, col: int) -> Token:
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
            if self._peek() == "." and self._peek(1) != ".":
                is_float = True
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            if self._peek() in ("e", "E") and (
                self._peek(1).isdigit()
                or (self._peek(1) in ("+", "-") and self._peek(2).isdigit())
            ):
                is_float = True
                self._advance()
                if self._peek() in ("+", "-"):
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
        # suffixes
        while self._peek() and self._peek() in "fFlLuU":
            if self._peek() in ("f", "F"):
                is_float = True
            self._advance()
        text = self.src[start:self.pos]
        return Token("FLOAT" if is_float else "INT", text, line, col)

    def _lex_string(self, line: int, col: int) -> Token:
        start = self.pos
        self._advance()  # opening quote
        while self._peek() != '"':
            if self._peek() in ("", "\n"):
                raise self._error("unterminated string literal")
            if self._peek() == "\\":
                self._advance()
            self._advance()
        self._advance()  # closing quote
        return Token("STRING", self.src[start:self.pos], line, col)

    def _lex_char(self, line: int, col: int) -> Token:
        start = self.pos
        self._advance()
        while self._peek() != "'":
            if self._peek() in ("", "\n"):
                raise self._error("unterminated character literal")
            if self._peek() == "\\":
                self._advance()
            self._advance()
        self._advance()
        return Token("CHAR", self.src[start:self.pos], line, col)


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: tokenize ``source`` fully."""
    return Lexer(source).tokenize()
