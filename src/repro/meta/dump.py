"""AST structure dumper (debugging / teaching aid).

Renders the tree the way Fig. 2's purple diagram does: one node per
line, indentation for structure, the salient attribute of each node
(names, operators, literal values, pragmas) inline.

>>> from repro.meta import Ast
>>> from repro.meta.dump import dump
>>> print(dump(Ast("int main() { return 1 + 2; }").unit))
TranslationUnit
  FunctionDecl main() -> int
    CompoundStmt
      ReturnStmt
        BinaryOp +
          IntLit 1
          IntLit 2
"""

from __future__ import annotations

from typing import List

from repro.meta.ast_nodes import (
    Assign, BinaryOp, BoolLit, Call, Cast, Comment, DeclStmt, FloatLit,
    ForStmt, FunctionDecl, Ident, IntLit, Node, Pragma, RawStmt, StringLit,
    UnaryOp, VarDecl,
)


def _annotation(node: Node) -> str:
    if isinstance(node, FunctionDecl):
        params = ", ".join(str(p.ctype) for p in node.params)
        return f"{node.name}({params}) -> {node.return_type}"
    if isinstance(node, VarDecl):
        suffix = "[]" if node.is_array else ""
        return f"{node.ctype} {node.name}{suffix}"
    if isinstance(node, Ident):
        return node.name
    if isinstance(node, Call):
        return f"{node.name}(...)" if node.args else f"{node.name}()"
    if isinstance(node, (BinaryOp, UnaryOp)):
        return node.op
    if isinstance(node, Assign):
        return node.op
    if isinstance(node, IntLit):
        return str(node.value)
    if isinstance(node, FloatLit):
        return node.text or str(node.value)
    if isinstance(node, BoolLit):
        return "true" if node.value else "false"
    if isinstance(node, StringLit):
        return repr(node.value)
    if isinstance(node, Cast):
        return f"({node.ctype})"
    if isinstance(node, ForStmt):
        var = node.loop_var()
        return f"var={var}" if var else ""
    if isinstance(node, (RawStmt, Comment)):
        first = node.text.splitlines()[0] if node.text else ""
        return first[:40]
    return ""


def dump(node: Node, max_depth: int = 100) -> str:
    """Indented structural dump of the subtree rooted at ``node``."""
    lines: List[str] = []

    def visit(current: Node, depth: int) -> None:
        note = _annotation(current)
        label = type(current).__name__ + (f" {note}" if note else "")
        for pragma in getattr(current, "pragmas", []):
            lines.append("  " * depth + f"#pragma {pragma.text}")
        lines.append("  " * depth + label)
        if depth >= max_depth:
            if any(True for _ in current.children()):
                lines.append("  " * (depth + 1) + "...")
            return
        for child in current.children():
            visit(child, depth + 1)

    visit(node, 0)
    return "\n".join(lines)
