"""Crash-consistent durability for the fleet router.

The router's placement table is its only real state -- lose it and
every in-flight job is stranded.  This module makes that table
survive crashes with three small, composable pieces:

:class:`RouterJournal`
    An append-only JSONL **write-ahead journal**: one record per
    placement event (``place`` / ``reroute`` / ``done``), each with a
    per-record CRC32 over its canonical JSON.  Appends flush to the OS
    on every record (a SIGKILL loses nothing) and fsync in batches
    (``fsync_batch``) when durability against power loss is on.  A
    **snapshot + compaction** pass keeps the journal bounded: every
    ``compact_every`` records the folded placement table is written to
    a snapshot file (atomic temp + replace) and the journal truncates.

:class:`LeaseFile`
    A shared lease with a **monotonic fencing token**: whoever calls
    :meth:`LeaseFile.acquire` bumps ``term`` and becomes the writer.
    Every journal append re-reads the lease (mtime-cached stat) and
    raises :class:`FencedOut` when a newer term exists, so a stale
    primary that lost a takeover race can never corrupt the journal.

:func:`apply_record`
    The single reducer that folds records into a placement table --
    shared by crash replay, the warm standby's tail loop, and tests,
    so every reader converges on the same state by construction.

Replay is **torn-tolerant**: a record that fails to parse or fails
its CRC is counted and skipped.  A torn *tail* is the expected
artifact of a crash mid-append; a torn record mid-file (disk fault)
only loses that one record -- recovery reconciliation plus
content-hash idempotency re-resolve whatever it described.

The ``journal.write`` fault site tears live appends on purpose: the
record's first half is written (newline-terminated so neighbours stay
parseable) and the append raises -- exercising on every chaos run the
exact bytes a real crash leaves behind.
"""

from __future__ import annotations

import copy
import json
import logging
import os
import tempfile
import threading
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.resilience import faults

log = logging.getLogger("repro.fleet.durable")

#: bump when the record/snapshot schema changes incompatibly
JOURNAL_FORMAT = 1

#: record operations the reducer understands
JOURNAL_OPS = ("place", "reroute", "done")

_REC_TOTAL = obs.REGISTRY.counter(
    "repro_journal_records_total",
    "journal records appended, by operation",
    ("op",))
_FSYNCS = obs.REGISTRY.counter(
    "repro_journal_fsyncs_total", "batched fsync calls on the journal")
_COMPACTIONS = obs.REGISTRY.counter(
    "repro_journal_compactions_total",
    "snapshot + truncate compaction passes")
_TORN = obs.REGISTRY.counter(
    "repro_journal_torn_records_total",
    "journal records dropped during replay",
    ("where",))
_WRITE_ERRORS = obs.REGISTRY.counter(
    "repro_journal_write_errors_total",
    "journal appends that failed and were contained")


def durable_enabled() -> bool:
    """``REPRO_DURABLE=1`` turns on fsync-grade durability."""
    return os.environ.get("REPRO_DURABLE", "").strip() == "1"


def record_crc32(record: Dict[str, Any]) -> int:
    """CRC32 over the record's canonical JSON minus the crc field
    (the same self-verification discipline as cache entries)."""
    body = {k: v for k, v in record.items() if k != "crc32"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(blob.encode("utf-8")) & 0xFFFFFFFF


def _fsync_dir(path: str) -> None:
    """Best-effort fsync of ``path``'s directory entry."""
    try:
        fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class FencedOut(RuntimeError):
    """The lease moved to a newer term; this writer must stop.

    Raised from :meth:`RouterJournal.append` on a stale primary after
    a standby takeover -- the fencing token makes split-brain writes
    impossible rather than merely unlikely.
    """

    def __init__(self, own_term: int, lease_term: int):
        super().__init__(
            f"journal writer fenced out: holds term {own_term} but the "
            f"lease is at term {lease_term} (a standby took over)")
        self.own_term = own_term
        self.lease_term = lease_term


class LeaseFile:
    """A shared lease file carrying a monotonic fencing token.

    ``acquire`` is *not* a distributed CAS -- the deployment model is
    one designated standby per primary (DESIGN.md §18), so the only
    writers are the primary (at boot) and its standby (at takeover),
    never two racers.  What the token **does** guarantee is that after
    a takeover the old primary's appends are rejected deterministically.
    """

    def __init__(self, path: str):
        self.path = path
        self._cache: Tuple[Optional[Tuple[int, int]], int] = (None, 0)

    def read(self) -> Dict[str, Any]:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return {"term": 0, "owner": None}
        if not isinstance(data, dict):
            return {"term": 0, "owner": None}
        return data

    def term(self) -> int:
        """The current fencing token (stat-cached: one syscall on the
        journal append hot path, a JSON read only after a change)."""
        try:
            st = os.stat(self.path)
        except OSError:
            return 0
        stamp = (st.st_mtime_ns, st.st_size)
        cached_stamp, cached_term = self._cache
        if stamp == cached_stamp:
            return cached_term
        term = int(self.read().get("term") or 0)
        self._cache = (stamp, term)
        return term

    def acquire(self, owner: str) -> int:
        """Bump the token and record ``owner``; returns the new term."""
        term = int(self.read().get("term") or 0) + 1
        payload = {"term": term, "owner": owner}
        root = os.path.dirname(self.path) or "."
        fd, tmp = tempfile.mkstemp(prefix=".tmp-lease-", dir=root)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            _fsync_dir(self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._cache = (None, 0)       # force a re-read next term()
        return term


def apply_record(table: Dict[str, Dict[str, Any]],
                 record: Dict[str, Any]) -> None:
    """Fold one journal record into a placement table.

    The one reducer every reader shares: crash replay, the standby's
    tail loop, and tests all converge on identical tables because they
    all run this exact function.  Unknown ops and ``done``/``reroute``
    for never-placed keys are ignored (their ``place`` record may have
    been torn away; reconciliation handles the remainder).
    """
    op = record.get("op")
    key = record.get("key")
    if not isinstance(key, str) or not key:
        return
    if op in ("place", "reroute"):
        entry = table.get(key)
        if entry is None:
            entry = {"runner": None, "payload": None, "trace": None,
                     "done": False, "status": None}
            table[key] = entry
        entry["runner"] = record.get("runner")
        if isinstance(record.get("payload"), dict):
            entry["payload"] = record["payload"]
        if isinstance(record.get("trace"), dict):
            entry["trace"] = record["trace"]
        entry["done"] = bool(record.get("done"))
        if op == "reroute":
            entry["done"] = False
    elif op == "done":
        entry = table.get(key)
        if entry is not None:
            entry["done"] = True
            entry["status"] = record.get("status")


class RouterJournal:
    """Crash-consistent write-ahead journal for router placements.

    File layout under ``root``::

        <name>.journal.jsonl    append-only records since last snapshot
        <name>.snapshot.json    folded table at a known seq (atomic)
        lease.json              shared fencing lease (all nodes)

    The journal keeps its own folded ``table`` (the reduction of
    snapshot + records) so compaction and the ``tail()`` cursor
    endpoint never re-read the file; memory stays bounded because
    payloads are small validated POST bodies and compaction bounds
    the record list.
    """

    def __init__(self, root: str, name: str = "primary",
                 fsync: Optional[bool] = None, fsync_batch: int = 8,
                 compact_every: int = 512,
                 lease: Optional[LeaseFile] = None):
        self.root = root
        self.name = name
        os.makedirs(root, exist_ok=True)
        self.path = os.path.join(root, f"{name}.journal.jsonl")
        self.snapshot_path = os.path.join(root, f"{name}.snapshot.json")
        self.lease = lease or LeaseFile(os.path.join(root, "lease.json"))
        self.fsync = durable_enabled() if fsync is None else bool(fsync)
        self.fsync_batch = max(1, int(fsync_batch))
        self.compact_every = max(1, int(compact_every))
        self.term = 0
        self.seq = 0                  # last seq written (or adopted)
        self.table: Dict[str, Dict[str, Any]] = {}
        self.torn_tail = 0            # replay: torn records at the tail
        self.torn_mid = 0             # replay: torn records mid-file
        self._fh = None
        self._recent: List[Dict[str, Any]] = []
        self._snapshot_seq = 0
        self._pending_fsync = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Open / replay / recover
    # ------------------------------------------------------------------

    def open(self, acquire_lease: bool = True) -> Dict[str, Dict[str, Any]]:
        """Replay snapshot + journal, compact, start accepting appends.

        With ``acquire_lease`` (a primary) the fencing token is bumped
        so any previous writer is fenced; a standby opens without it
        and only mirrors.  Returns a deep copy of the recovered table
        for the caller's reconciliation pass.
        """
        with self._lock:
            self._replay_locked()
            if acquire_lease:
                self.term = self.lease.acquire(self.name)
            else:
                self.term = self.lease.term()
            # compact immediately: recovery must never leave a torn
            # tail sitting mid-file once new records append after it
            self._compact_locked()
            self._fh = open(self.path, "a", encoding="utf-8")
            return copy.deepcopy(self.table)

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.flush()
                    if self.fsync:
                        os.fsync(self._fh.fileno())
                except (OSError, ValueError):
                    pass
                self._fh.close()
                self._fh = None

    def _replay_locked(self) -> None:
        self.table = {}
        self.seq = 0
        self.torn_tail = self.torn_mid = 0
        snap = self._read_snapshot()
        if snap is not None:
            self.table = snap.get("placements") or {}
            self.seq = int(snap.get("seq") or 0)
        self._snapshot_seq = self.seq
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.read().split("\n")
        except OSError:
            return
        parsed: List[Tuple[int, Optional[Dict[str, Any]]]] = []
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            parsed.append((i, self._decode_record(line)))
        last = parsed[-1][0] if parsed else -1
        for i, record in parsed:
            if record is None:
                if i == last:
                    self.torn_tail += 1
                    _TORN.inc(where="tail")
                else:
                    self.torn_mid += 1
                    _TORN.inc(where="mid")
                continue
            if record["seq"] <= self._snapshot_seq:
                continue              # already folded into the snapshot
            apply_record(self.table, record)
            self.seq = max(self.seq, record["seq"])
        if self.torn_tail or self.torn_mid:
            log.warning(
                "journal %s: dropped %d torn record(s) on replay "
                "(%d at the tail -- expected after a crash)",
                self.path, self.torn_tail + self.torn_mid,
                self.torn_tail)

    @staticmethod
    def _decode_record(line: str) -> Optional[Dict[str, Any]]:
        """One journal line -> record dict, or None when torn/corrupt."""
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict):
            return None
        crc = record.get("crc32")
        if not isinstance(crc, int) or record_crc32(record) != crc:
            return None
        if record.get("op") not in JOURNAL_OPS:
            return None
        try:
            record["seq"] = int(record["seq"])
        except (KeyError, TypeError, ValueError):
            return None
        return record

    def _read_snapshot(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self.snapshot_path, "r", encoding="utf-8") as fh:
                snap = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(snap, dict):
            return None
        crc = snap.get("crc32")
        if not isinstance(crc, int) or record_crc32(snap) != crc:
            log.warning("journal snapshot %s failed its CRC; replaying "
                        "from an empty table", self.snapshot_path)
            return None
        if snap.get("format") != JOURNAL_FORMAT:
            return None
        return snap

    # ------------------------------------------------------------------
    # Append path (primary)
    # ------------------------------------------------------------------

    def append(self, op: str, key: str, **fields: Any) -> Dict[str, Any]:
        """Author one record (primary only; fencing-checked).

        Raises :class:`FencedOut` when the lease moved past our term,
        and :class:`~repro.resilience.faults.InjectedFault` when the
        ``journal.write`` site fires (the record is left *torn on
        disk*, newline-terminated, so replay drops exactly it).
        """
        if op not in JOURNAL_OPS:
            raise ValueError(f"unknown journal op {op!r}")
        with self._lock:
            if self._fh is None:
                raise RuntimeError("journal is not open")
            lease_term = self.lease.term()
            if lease_term != self.term:
                raise FencedOut(self.term, lease_term)
            record = {"seq": self.seq + 1, "term": self.term,
                      "op": op, "key": key}
            record.update(fields)
            record["crc32"] = record_crc32(record)
            line = json.dumps(record, separators=(",", ":"))
            try:
                faults.inject("journal.write")
            except faults.InjectedFault:
                # tear the record the way a crash mid-append would:
                # half the bytes, then a terminator so the next record
                # still parses.  The seq is burnt; replay skips it.
                self._fh.write(line[:max(1, len(line) // 2)] + "\n")
                self._fh.flush()
                self.seq = record["seq"]
                _WRITE_ERRORS.inc()
                raise
            self._fh.write(line + "\n")
            self._fh.flush()          # -> OS: survives SIGKILL
            self.seq = record["seq"]
            self._recent.append(record)
            apply_record(self.table, record)
            _REC_TOTAL.inc(op=op)
            self._maybe_fsync_locked()
            if len(self._recent) >= self.compact_every:
                self._compact_locked()
            return record

    def append_mirror(self, record: Dict[str, Any]) -> None:
        """Replicate a primary-authored record verbatim (standby).

        No fencing check -- mirroring is replication, not authorship;
        the standby adopts the record's own seq/term so its cursor
        stays in the primary's sequence space.
        """
        with self._lock:
            if self._fh is None:
                raise RuntimeError("journal is not open")
            line = json.dumps(record, separators=(",", ":"))
            self._fh.write(line + "\n")
            self._fh.flush()
            self.seq = max(self.seq, int(record.get("seq") or 0))
            self._recent.append(record)
            apply_record(self.table, record)
            self._maybe_fsync_locked()
            if len(self._recent) >= self.compact_every:
                self._compact_locked()

    def _maybe_fsync_locked(self) -> None:
        if not self.fsync:
            return
        self._pending_fsync += 1
        if self._pending_fsync >= self.fsync_batch:
            faults.inject("cache.fsync")
            os.fsync(self._fh.fileno())
            self._pending_fsync = 0
            _FSYNCS.inc()

    # ------------------------------------------------------------------
    # Snapshot + compaction
    # ------------------------------------------------------------------

    def compact(self) -> None:
        with self._lock:
            self._compact_locked()

    def _compact_locked(self) -> None:
        snap = {"format": JOURNAL_FORMAT, "seq": self.seq,
                "term": self.term,
                "placements": self.table}
        snap["crc32"] = record_crc32(snap)
        fd, tmp = tempfile.mkstemp(prefix=".tmp-snap-", dir=self.root)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(snap, fh)
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, self.snapshot_path)
            if self.fsync:
                _fsync_dir(self.snapshot_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        # the snapshot holds everything: truncate the journal
        if self._fh is not None:
            self._fh.close()
        self._fh = open(self.path, "w", encoding="utf-8")
        self._snapshot_seq = self.seq
        self._recent = []
        self._pending_fsync = 0
        _COMPACTIONS.inc()

    def adopt_snapshot(self, table: Dict[str, Dict[str, Any]],
                       seq: int, term: int) -> None:
        """Standby wholesale-adopts the primary's folded table (the
        tail answered ``reset`` because our cursor predated its
        snapshot) and persists it as a local snapshot."""
        with self._lock:
            self.table = copy.deepcopy(table)
            self.seq = int(seq)
            self.term = int(term)
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            self._compact_locked()

    def promote(self, owner: Optional[str] = None) -> int:
        """Standby -> primary: take the lease (fencing the old writer)
        and snapshot under the new term.  Returns the new term."""
        term = self.lease.acquire(owner or self.name)
        with self._lock:
            self.term = term
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            self._compact_locked()
        return term

    # ------------------------------------------------------------------
    # Tail cursor (the /v1/journal?since= payload)
    # ------------------------------------------------------------------

    def tail(self, since: int) -> Dict[str, Any]:
        """Records past ``since``, or a table reset when the cursor
        predates the last compaction (the records are gone -- the
        folded table *is* their reduction)."""
        with self._lock:
            if since < self._snapshot_seq:
                return {"reset": True, "term": self.term,
                        "next": self.seq,
                        "placements": copy.deepcopy(self.table),
                        "records": []}
            return {"reset": False, "term": self.term,
                    "next": self.seq, "placements": None,
                    "records": [r for r in self._recent
                                if r["seq"] > since]}

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {"seq": self.seq, "term": self.term,
                    "snapshot_seq": self._snapshot_seq,
                    "pending_records": len(self._recent),
                    "placements": len(self.table),
                    "torn_tail": self.torn_tail,
                    "torn_mid": self.torn_mid,
                    "fsync": self.fsync, "path": self.path}
