"""The router's view of one runner node, plus a local supervisor.

:class:`RunnerHandle` is pure state + blocking HTTP: the router calls
:meth:`probe` from its probe loop and :meth:`request` from a thread
pool when forwarding.  The handle never owns the remote process -- a
runner is whatever answers ``/healthz`` at its URL.

State machine (``state``)::

    unknown --probe ok--> healthy --probe fail x2--> unhealthy
       |                     |  ^                        |
       |                     v  |  (re-admission)        |
       |                  draining <--- probe ok --------+
       +--version mismatch--> rejected (until it matches again)

``healthy`` is the only routable state.  ``draining`` (the runner
answered but reported degraded/draining) and ``rejected`` (version
skew) are reachable-but-unroutable; ``unhealthy`` means the node is
gone and its in-flight jobs need re-routing.

:class:`RunnerProcess` supervises a real ``python -m repro serve``
child on localhost -- the benchmark, the chaos tests and the CI
fleet-smoke job all boot their fleets through it.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.obs.collect import clock_offset
from repro.resilience import faults

#: consecutive probe failures before a runner is declared unhealthy
#: (one lost probe is a blip; two is a dead node)
PROBE_FAILURES_TO_EVICT = 2


class RunnerHandle:
    """Health, version and in-flight accounting for one runner URL."""

    def __init__(self, url: str, timeout_s: float = 10.0):
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s
        self.state = "unknown"
        self.version: Optional[str] = None
        self.consecutive_failures = 0
        self.last_probe_s: Optional[float] = None
        self.last_error: Optional[str] = None
        #: router-side queue depth: forwards accepted but not terminal
        #: (this is the gauge work stealing compares to the threshold)
        self.inflight = 0
        #: seconds to ADD to this runner's timestamps to land on the
        #: local clock (probe round-trip midpoint vs. reported ``now``)
        self.clock_offset_s = 0.0
        #: drain cursor into the runner's ``/v1/obs/spans`` buffer
        self.spans_cursor = 0

    # ------------------------------------------------------------------
    @property
    def routable(self) -> bool:
        return self.state == "healthy"

    def load(self) -> int:
        return self.inflight

    # ------------------------------------------------------------------
    def request(self, method: str, path: str,
                payload: Optional[Dict[str, Any]] = None,
                headers: Optional[Dict[str, str]] = None,
                timeout_s: Optional[float] = None
                ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """One blocking HTTP exchange with this runner.

        Returns ``(status, json_body, headers)``; raises
        ``urllib.error.URLError`` (or ``OSError``) when the node is
        unreachable -- the router maps that to node loss, never to a
        job failure.

        The ``net.request`` wire-fault site fires here: a *drop*
        raises before the request is sent, a *truncation* raises after
        the exchange completed (so the runner may have acted -- the
        exact ambiguity a torn TCP stream has), *http_500* answers a
        synthetic retryable refusal, and *delay* stalls then proceeds.
        """
        mode = faults.inject_wire("net.request")
        if mode == "drop":
            raise urllib.error.URLError(
                f"injected fault: request dropped before send "
                f"({method} {path})")
        if mode == "http_500":
            return 503, {"error": {
                "code": "unavailable",
                "message": f"injected fault: synthetic upstream 5xx "
                           f"({method} {path})",
                "retry_after_s": 0.1}}, {}
        if mode == "delay":
            time.sleep(0.05)
        body = None
        send_headers = {"Accept": "application/json"}
        send_headers.update(headers or {})
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            send_headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=body, headers=send_headers,
            method=method)
        try:
            with urllib.request.urlopen(
                    request, timeout=timeout_s or self.timeout_s) as resp:
                data = json.loads(resp.read().decode("utf-8") or "{}")
                result = resp.status, data, dict(resp.headers)
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", "replace")
            try:
                data = json.loads(raw or "{}")
            except json.JSONDecodeError:
                data = {"error": {"code": "internal", "message": raw}}
            result = exc.code, data, dict(exc.headers or {})
        if mode == "truncated":
            raise urllib.error.URLError(
                f"injected fault: response truncated after exchange "
                f"({method} {path})")
        return result

    # ------------------------------------------------------------------
    def probe(self, expected_version: Optional[str] = None,
              timeout_s: float = 5.0) -> Dict[str, Any]:
        """One health probe; updates the state machine.

        Returns the (possibly empty) health payload.  A reachable
        runner reporting degraded health parks in ``draining``; a
        version different from ``expected_version`` parks in
        ``rejected`` -- both leave in-flight accounting alone, because
        the node is still alive and will finish what it holds.
        """
        self.last_probe_s = time.time()
        t_sent = obs.now()
        try:
            status, health, _ = self.request(
                "GET", "/healthz", timeout_s=timeout_s)
        except (urllib.error.URLError, OSError) as exc:
            self.consecutive_failures += 1
            self.last_error = f"{type(exc).__name__}: {exc}"
            if (self.consecutive_failures >= PROBE_FAILURES_TO_EVICT
                    or self.state == "unknown"):
                self.state = "unhealthy"
            return {}
        self.consecutive_failures = 0
        self.last_error = None
        self.version = health.get("version")
        # clock alignment: the runner reports its own `now`; the probe
        # round-trip midpoint maps it onto the router clock so pulled
        # span timestamps stitch monotonically across nodes
        remote_now = health.get("now")
        if isinstance(remote_now, (int, float)):
            self.clock_offset_s = clock_offset(
                t_sent, obs.now(), float(remote_now))
        if expected_version is not None and self.version != expected_version:
            self.state = "rejected"
            self.last_error = (f"version {self.version!r} != router "
                               f"{expected_version!r}")
        elif status == 200 and health.get("status") == "ok":
            self.state = "healthy"
        else:
            self.state = "draining"
            self.last_error = f"status={status} health={health.get('status')}"
        return health

    def fetch_spans(self, since: Optional[int] = None,
                    timeout_s: float = 10.0) -> Dict[str, Any]:
        """Drain this runner's span buffer past the cursor.

        Advances ``spans_cursor`` on success so the next pull is
        incremental; raises like :meth:`request` when the node is gone.
        """
        cursor = self.spans_cursor if since is None else since
        status, data, _ = self.request(
            "GET", f"/v1/obs/spans?since={cursor}", timeout_s=timeout_s)
        if status == 200 and since is None:
            self.spans_cursor = int(data.get("next") or cursor)
        return data if status == 200 else {"spans": [], "next": cursor}

    def fetch_text(self, path: str,
                   timeout_s: Optional[float] = None) -> str:
        """GET a non-JSON resource (e.g. ``/metrics``) from the runner."""
        request = urllib.request.Request(self.url + path,
                                         method="GET")
        with urllib.request.urlopen(
                request, timeout=timeout_s or self.timeout_s) as resp:
            return resp.read().decode("utf-8")

    def snapshot(self) -> Dict[str, Any]:
        return {
            "url": self.url,
            "state": self.state,
            "version": self.version,
            "inflight": self.inflight,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
            "clock_offset_s": round(self.clock_offset_s, 6),
        }

    def __repr__(self):
        return f"<RunnerHandle {self.url} {self.state} " \
               f"inflight={self.inflight}>"


# ----------------------------------------------------------------------
# Local process supervision (benchmarks, chaos tests, CI)
# ----------------------------------------------------------------------

def free_port() -> int:
    """An OS-assigned free TCP port on localhost."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class RunnerProcess:
    """One supervised local ``python -m repro serve`` child.

    Boots the runner on its own port with an isolated (or shared)
    cache directory, waits until ``/healthz`` answers, and can kill it
    dead (SIGKILL) for node-loss chaos.  ``env`` entries overlay the
    parent environment, which is how tests pin ``REPRO_SIM_LATENCY_S``
    or ``REPRO_FLEET_PEERS`` per node.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 workers: int = 1, port: Optional[int] = None,
                 env: Optional[Dict[str, str]] = None,
                 extra_args: Optional[List[str]] = None):
        self.port = port or free_port()
        self.url = f"http://127.0.0.1:{self.port}"
        self.cache_dir = cache_dir
        argv = [sys.executable, "-m", "repro", "serve",
                "--host", "127.0.0.1", "--port", str(self.port),
                "--workers", str(workers)]
        if cache_dir:
            argv += ["--cache-dir", cache_dir]
        argv += list(extra_args or [])
        child_env = dict(os.environ)
        child_env.update(env or {})
        self.proc = subprocess.Popen(
            argv, env=child_env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)

    # ------------------------------------------------------------------
    def wait_ready(self, timeout_s: float = 30.0) -> None:
        """Block until ``/healthz`` answers (any status) or die trying."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"runner on port {self.port} exited with "
                    f"{self.proc.returncode} before becoming ready")
            try:
                with urllib.request.urlopen(self.url + "/healthz",
                                            timeout=2.0):
                    return
            except urllib.error.HTTPError:
                return                 # answered: degraded still counts
            except (urllib.error.URLError, OSError):
                time.sleep(0.05)
        raise TimeoutError(f"runner on port {self.port} never became "
                           f"ready within {timeout_s}s")

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill(self) -> None:
        """SIGKILL: the node-loss chaos primitive (no drain, no warning)."""
        if self.alive:
            self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=10)

    def pause(self) -> None:
        """SIGSTOP: the partition chaos primitive -- the process is
        alive but answers nothing, exactly what a netsplit looks like
        from the router's side of the socket."""
        if self.alive:
            self.proc.send_signal(signal.SIGSTOP)

    def resume(self) -> None:
        """SIGCONT: heal the simulated partition."""
        if self.alive:
            self.proc.send_signal(signal.SIGCONT)

    def stop(self, timeout_s: float = 15.0) -> None:
        """SIGTERM and wait: the polite shutdown (drains in-flight)."""
        if self.alive:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:
                self.kill()

    def __enter__(self):
        self.wait_ready()
        return self

    def __exit__(self, *exc):
        self.stop()
        return False


class RouterProcess(RunnerProcess):
    """One supervised local ``python -m repro router`` child.

    Same supervision surface as :class:`RunnerProcess` (``wait_ready``
    / ``kill`` / ``pause`` / ``stop``) but boots the control plane:
    chaos scenarios SIGKILL the *router* mid-batch and expect the
    journal + standby to carry every job to exactly one terminal
    state.  ``standby_of`` boots the node as a warm standby tailing
    the given primary.
    """

    def __init__(self, runners: List[str], port: Optional[int] = None,
                 journal_dir: Optional[str] = None,
                 node_name: Optional[str] = None,
                 standby_of: Optional[str] = None,
                 probe_interval_s: float = 1.0,
                 env: Optional[Dict[str, str]] = None,
                 extra_args: Optional[List[str]] = None):
        self.port = port or free_port()
        self.url = f"http://127.0.0.1:{self.port}"
        self.cache_dir = None
        argv = [sys.executable, "-m", "repro", "router",
                "--host", "127.0.0.1", "--port", str(self.port),
                "--runners", ",".join(runners),
                "--probe-interval", str(probe_interval_s)]
        if journal_dir:
            argv += ["--journal-dir", journal_dir]
        if node_name:
            argv += ["--node-name", node_name]
        if standby_of:
            argv += ["--standby-of", standby_of]
        argv += list(extra_args or [])
        child_env = dict(os.environ)
        child_env.update(env or {})
        self.proc = subprocess.Popen(
            argv, env=child_env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
