"""Peer-fetch cache tier: fill local misses from fleet peers.

:class:`PeerFetchCache` is a :class:`~repro.service.cache.CacheBackend`
wrapping the node's local :class:`~repro.service.cache.ResultCache`.
On a local miss it asks peer runners for the completed entry over
``GET /v1/cache/{key}`` -- shard owner first, in the fleet's shared
:class:`~repro.fleet.hashring.HashRing` preference order -- and adopts
a hit into the local store through
:meth:`~repro.service.cache.ResultCache.put_entry`, which re-verifies
the format version and CRC32.  A peer can therefore never poison the
local cache: a corrupt or stale payload is dropped and the next peer
(or a recompute) takes over.

Peers serve ``/v1/cache/{key}`` strictly from *their* local store
(:meth:`get_local_entry`), so two nodes missing the same key fetch at
most one hop and never loop.

Writes are purely local -- the fabric has no replication protocol.
Consistency comes from content addressing: every node computing the
same key writes byte-identical entries, so fetch-vs-recompute races
are idempotent.
"""

from __future__ import annotations

import json
import logging
import urllib.error
import urllib.request
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro import obs
from repro.fleet.hashring import HashRing
from repro.flow.serialize import FlowResultRecord, result_from_dict
from repro.service.cache import CacheStats, ResultCache

logger = logging.getLogger(__name__)

_PEER_FETCH_TOTAL = obs.REGISTRY.counter(
    "repro_fleet_peer_fetch_total",
    "peer cache-fetch attempts by outcome",
    ("outcome",))


class PeerFetchCache:
    """Local disk cache with read-through to fleet peers."""

    def __init__(self, local: ResultCache, peers: Iterable[str],
                 timeout_s: float = 5.0,
                 ring: Optional[HashRing] = None):
        self.local = local
        self.peers: List[str] = [p.rstrip("/") for p in peers]
        self.timeout_s = timeout_s
        self.ring = ring or HashRing(self.peers)

    # -- CacheBackend surface (delegating writes/identity to local) ----
    @property
    def root(self) -> str:
        return self.local.root

    @property
    def stats(self) -> CacheStats:
        return self.local.stats

    def put(self, key: str, job_spec: Dict[str, Any],
            result_dict: Dict[str, Any],
            telemetry: Optional[Dict[str, Any]] = None) -> str:
        return self.local.put(key, job_spec, result_dict,
                              telemetry=telemetry)

    def put_entry(self, entry: Dict[str, Any]) -> str:
        return self.local.put_entry(entry)

    def get_local_entry(self, key: str) -> Optional[Dict[str, Any]]:
        """Strictly local lookup -- what this node serves to peers."""
        return self.local.get_local_entry(key)

    # ------------------------------------------------------------------
    def get_entry(self, key: str) -> Optional[Dict[str, Any]]:
        """Local entry, else the first verifiable peer copy (adopted)."""
        entry = self.local.get_entry(key)
        if entry is not None:
            return entry
        return self._fetch_from_peers(key)

    def get(self, key: str) -> Optional[FlowResultRecord]:
        entry = self.get_entry(key)
        if entry is None:
            return None
        return result_from_dict(entry["result"])

    # ------------------------------------------------------------------
    def _fetch_from_peers(self, key: str) -> Optional[Dict[str, Any]]:
        for peer in self.ring.preference(key):
            entry = self._fetch_one(peer, key)
            if entry is not None:
                return entry
        return None

    def _fetch_one(self, peer: str,
                   key: str) -> Optional[Dict[str, Any]]:
        try:
            with urllib.request.urlopen(
                    f"{peer}/v1/cache/{key}",
                    timeout=self.timeout_s) as resp:
                entry = json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            outcome = "miss" if exc.code == 404 else "error"
            _PEER_FETCH_TOTAL.inc(outcome=outcome)
            return None
        except (urllib.error.URLError, OSError, ValueError) as exc:
            _PEER_FETCH_TOTAL.inc(outcome="error")
            logger.debug("peer fetch %s from %s failed: %s",
                         key[:12], peer, exc)
            return None
        try:
            # adoption re-verifies format + CRC before touching disk
            self.local.put_entry(entry)
        except (ValueError, OSError) as exc:
            _PEER_FETCH_TOTAL.inc(outcome="invalid")
            logger.warning("peer %s served unusable entry for %s: %s",
                           peer, key[:12], exc)
            return None
        _PEER_FETCH_TOTAL.inc(outcome="hit")
        obs.event("fleet.peer_fetch", key=key[:12], peer=peer)
        return entry

    # -- remaining ResultCache conveniences ----------------------------
    def quarantined(self) -> Iterator[str]:
        return self.local.quarantined()

    def keys(self) -> Iterator[str]:
        return self.local.keys()

    def size_bytes(self) -> int:
        return self.local.size_bytes()

    def purge(self) -> int:
        return self.local.purge()

    def __len__(self) -> int:
        return len(self.local)

    def __repr__(self):
        return (f"<PeerFetchCache {self.local.root} "
                f"peers={len(self.peers)}>")
