"""The fleet front door: shard, steal, survive node loss.

:class:`FleetRouter` speaks the same ``/v1`` wire schema as a single
``python -m repro serve`` node, so :class:`repro.client.ReproClient`
needs no changes -- it just points at the router.  Behind the facade:

**Sharding.**  ``POST /v1/jobs`` routes by the job's content hash on a
consistent :class:`~repro.fleet.hashring.HashRing` over the *routable*
runners, so identical specs land on the same node (its cache and
in-flight dedup absorb them) and a node restart only reshuffles its
own shard.

**Work stealing.**  When the shard owner's router-side queue depth
(:meth:`RunnerHandle.load`) is at or past ``steal_threshold``, the job
is placed on the least-loaded routable runner instead -- hash affinity
is a cache optimization, not a correctness constraint, because results
are content-addressed and the peer-fetch tier heals misplacement.

**Node-loss recovery.**  Every accepted job's payload is kept in the
router's placement table.  A dead runner (forward error, failed
probes) or one that lost its memory (restart answering 404) gets its
in-flight jobs *resubmitted* to survivors -- a fresh submission with
the job's full retry budget, so node loss never consumes job retries.
Content-hash idempotency makes resubmission safe: a job that actually
completed resolves instantly from cache or dedup, never runs twice.

**Admission breaker.**  Zero routable runners strikes the fleet
breaker and sheds with ``503 unavailable``; once open, the breaker
sheds with ``429 overloaded`` until its cooldown, mirroring the
single-node service's admission semantics.

The probe loop re-admits recovered runners automatically, and rejects
runners whose ``/healthz`` ``version`` differs from the router's
(mixed-version fleets corrupt cache-entry compatibility assumptions).

**Durability.**  With ``journal_dir`` set, every placement mutation is
journaled through :class:`~repro.fleet.durable.RouterJournal` *before*
the client hears about it, so a router crash mid-batch is recoverable:
on restart the journal replays, each live placement is reconciled
against its runner's ``/v1/jobs/{id}``, and anything lost is
resubmitted (content-hash idempotency makes the replay safe).  A
**warm standby** (``standby_of``) tails the primary's journal over
``GET /v1/journal?since=`` and, after ``takeover_after`` consecutive
tail failures, takes over behind the lease's monotonic fencing token
-- the stale primary's next journal append raises ``FencedOut`` and it
demotes itself to shedding 503s (split-brain writes are impossible,
not just unlikely).  See DESIGN.md §18 for the full protocol.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import urllib.error
import urllib.parse
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Optional

import repro
from repro import obs
from repro.fleet.durable import FencedOut, RouterJournal, apply_record
from repro.fleet.hashring import HashRing
from repro.fleet.runner import RunnerHandle
from repro.resilience import CircuitBreaker, faults
from repro.server import protocol
from repro.server.http import HttpServerBase, parse_trace_parent
from repro.server.protocol import JobNotFound, ServerError

log = logging.getLogger("repro.fleet.router")

#: forward statuses that mean "this runner refused, try another"
_REFUSAL_CODES = ("busy", "overloaded", "unavailable")


class _Placement:
    """Where one accepted job lives and what it would take to redo it."""

    __slots__ = ("runner", "payload", "done", "counted", "trace")

    def __init__(self, runner: str, payload: Dict[str, Any]):
        self.runner = runner
        self.payload = payload        # the validated POST body
        self.done = False
        self.counted = False          # holds an inflight slot on runner
        #: the job's root span context -- reroutes and resubmissions
        #: parent onto it so the job keeps ONE trace id for life
        self.trace: Optional[Dict[str, str]] = None


class FleetRouter(HttpServerBase):
    """Shards ``/v1`` traffic across N runner nodes."""

    def __init__(self, runners: Iterable[str],
                 host: str = "127.0.0.1", port: int = 8000,
                 steal_threshold: int = 4,
                 probe_interval_s: float = 2.0,
                 expected_version: Optional[str] = None,
                 forward_timeout_s: float = 60.0,
                 breaker_threshold: int = 3,
                 breaker_cooldown_s: float = 5.0,
                 obs_buffer: int = 4096,
                 slo_target: float = 0.99,
                 slo_latency_s: float = 5.0,
                 journal: Optional[RouterJournal] = None,
                 journal_dir: Optional[str] = None,
                 node_name: Optional[str] = None,
                 standby_of: Optional[str] = None,
                 takeover_after: int = 3,
                 tail_interval_s: float = 0.5):
        urls = [u.rstrip("/") for u in runners]
        if not urls:
            raise ValueError("a fleet router needs at least one runner")
        self.host = host
        self.port = port
        #: "primary" serves traffic; "standby" tails the primary's
        #: journal and sheds until takeover.  ``fenced`` marks a
        #: primary whose lease moved on (it sheds too).
        self.role = "standby" if standby_of else "primary"
        self.fenced = False
        self.node_name = node_name or ("standby" if standby_of
                                       else "primary")
        self.journal = journal
        if self.journal is None and journal_dir:
            self.journal = RouterJournal(journal_dir,
                                         name=self.node_name)
        self.takeover_after = max(1, int(takeover_after))
        self.tail_interval_s = tail_interval_s
        self._primary = (RunnerHandle(standby_of) if standby_of
                         else None)
        self._tail_cursor = 0
        self._tail_failures = 0
        self._tail_task: Optional[asyncio.Task] = None
        #: the standby's mirror of the primary's folded table (also
        #: kept when it has no journal of its own)
        self._mirror: Dict[str, Dict[str, Any]] = {}
        self.steal_threshold = steal_threshold
        self.probe_interval_s = probe_interval_s
        self.forward_timeout_s = forward_timeout_s
        #: runners must match this version exactly (None disables)
        self.expected_version = (repro.__version__
                                 if expected_version is None
                                 else expected_version) or None
        self.handles: Dict[str, RunnerHandle] = {
            url: RunnerHandle(url) for url in urls}
        self.ring = HashRing(urls)
        self.breaker = CircuitBreaker(
            "fleet.admission", failure_threshold=breaker_threshold,
            cooldown_s=breaker_cooldown_s)
        self.draining = False
        # the fleet's observability brain: the router's own spans land
        # in span_buffer (on by default -- a router serves few requests
        # and every one should trace), runner spans are pulled by the
        # probe loop, and both stitch per trace id in trace_store
        self.span_buffer: Optional[obs.SpanBuffer] = (
            obs.SpanBuffer(obs_buffer) if obs_buffer > 0 else None)
        self.trace_store = obs.TraceStore()
        self.slo = obs.SLOTracker("router", target=slo_target,
                                  latency_s=slo_latency_s)
        self._own_cursor = 0          # drain cursor into span_buffer
        self._placements: Dict[str, _Placement] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._probe_task: Optional[asyncio.Task] = None
        # blocking urllib forwards run here, never on the loop; sized
        # past the runner count so probes can't starve forwards
        self._executor = ThreadPoolExecutor(
            max_workers=max(8, 2 * len(urls) + 2),
            thread_name_prefix="fleet-fwd")
        reg = obs.REGISTRY
        self._m_requests = reg.counter(
            "repro_http_requests_total", "HTTP requests served",
            labelnames=("route", "status"))
        self._m_latency = reg.histogram(
            "repro_http_request_seconds", "HTTP request latency",
            labelnames=("route",))
        self._m_shard = reg.counter(
            "repro_fleet_shard_jobs_total",
            "jobs placed on a runner by the router",
            labelnames=("runner",))
        self._m_steals = reg.counter(
            "repro_fleet_steals_total",
            "jobs placed off-owner because the owner was overloaded",
            labelnames=("runner",))
        self._m_reroutes = reg.counter(
            "repro_fleet_reroutes_total",
            "jobs moved between runners after placement",
            labelnames=("reason",))
        self._m_inflight = reg.gauge(
            "repro_fleet_runner_inflight",
            "router-tracked jobs in flight per runner",
            labelnames=("runner",))
        self._m_healthy = reg.gauge(
            "repro_fleet_runners_healthy", "routable runner count")
        self._m_failovers = reg.counter(
            "repro_fleet_failovers_total",
            "standby-to-primary takeovers on this node")
        self._m_readopts = reg.counter(
            "repro_fleet_readopts_total",
            "placements rebuilt by scatter-asking the runners (a "
            "journal record was torn or never written)")
        self._m_lease_term = reg.gauge(
            "repro_fleet_lease_term",
            "last fencing-lease term this router observed")
        for url in urls:
            self._m_inflight.set(0, runner=url)
        self._m_healthy.set(0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Recover (journal replay + reconciliation), bind, serve.

        A primary replays its journal *before* binding the socket, so
        no request ever observes a half-recovered table.  A standby
        binds immediately (it sheds job traffic anyway) and starts the
        tail loop instead of the probe loop.
        """
        self._loop = asyncio.get_running_loop()
        if self.span_buffer is not None:
            obs.add_sink(self.span_buffer)
        self.slo.attach(obs.REGISTRY)
        if self.role == "standby":
            if self.journal is not None:
                # a *restarted* standby replays its own mirror first
                self._mirror = await self._in_executor(
                    self.journal.open, False)
                self._tail_cursor = self.journal.seq
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port)
            self.port = self._server.sockets[0].getsockname()[1]
            self._tail_task = self._loop.create_task(self._tail_loop())
            log.info("fleet standby on http://%s:%d tailing %s "
                     "(takeover after %d missed tails)",
                     self.host, self.port, self._primary.url,
                     self.takeover_after)
            return
        table: Dict[str, Dict[str, Any]] = {}
        if self.journal is not None:
            table = await self._in_executor(self.journal.open, True)
            self._m_lease_term.set(self.journal.term)
        await self._probe_all()
        if table:
            await self._recover(table)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._probe_task = self._loop.create_task(self._probe_loop())
        log.info("fleet router on http://%s:%d over %d runner(s)%s",
                 self.host, self.port, len(self.handles),
                 f" [journal {self.journal.path}, term "
                 f"{self.journal.term}]" if self.journal else "")

    async def shutdown(self) -> None:
        self.draining = True
        for task in (self._probe_task, self._tail_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        self._probe_task = self._tail_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.journal is not None:
            self.journal.close()
        if self.span_buffer is not None:
            obs.remove_sink(self.span_buffer)
        self.slo.detach()
        self._executor.shutdown(wait=False)

    def run(self) -> None:
        """Serve until SIGINT/SIGTERM (blocking)."""
        async def main():
            await self.start()
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, stop.set)
                except (NotImplementedError, RuntimeError):
                    pass
            await stop.wait()
            log.info("signal received: shutting down router")
            await self.shutdown()

        asyncio.run(main())

    # ------------------------------------------------------------------
    # Fleet membership
    # ------------------------------------------------------------------

    def routable(self) -> List[RunnerHandle]:
        return [h for h in self.handles.values() if h.routable]

    async def _probe_loop(self) -> None:
        while True:
            await asyncio.sleep(self.probe_interval_s)
            try:
                await self._probe_all()
            except Exception:           # noqa: BLE001 - keep probing
                log.exception("fleet probe pass failed")

    async def _probe_all(self) -> None:
        for handle in self.handles.values():
            before = handle.state
            await self._in_executor(handle.probe, self.expected_version)
            after = handle.state
            if after != before:
                log.info("runner %s: %s -> %s%s", handle.url, before,
                         after,
                         f" ({handle.last_error})" if handle.last_error
                         else "")
                obs.event("fleet.runner_state", runner=handle.url,
                          before=before, after=after)
            if after == "unhealthy" and before != "unhealthy":
                await self._reroute_orphans(handle, reason="node_loss")
        self._m_healthy.set(len(self.routable()))
        await self._collect_spans()

    async def _collect_spans(self) -> None:
        """Pull span batches fleet-wide into the trace store.

        Runs after every probe pass and on demand before serving a
        trace read.  Runner timestamps are shifted by the probe-derived
        clock offset; the router's own spans ingest at offset 0.
        Ingestion dedups by span id, so overlapping passes are safe.
        """
        if self.span_buffer is not None:
            spans, self._own_cursor = self.span_buffer.since(
                self._own_cursor)
            self.trace_store.ingest(spans, 0.0, runner="router")
        for handle in self.handles.values():
            if handle.state not in ("healthy", "draining", "rejected"):
                continue
            try:
                data = await self._in_executor(handle.fetch_spans)
            except (urllib.error.URLError, OSError):
                continue       # probes own liveness; a miss is fine
            spans = data.get("spans") or ()
            if spans:
                self.trace_store.ingest(
                    spans, handle.clock_offset_s, runner=handle.url)

    async def _reroute_orphans(self, dead: RunnerHandle,
                               reason: str) -> None:
        """Resubmit a lost runner's in-flight jobs to survivors."""
        orphans = [(key, p) for key, p in self._placements.items()
                   if p.runner == dead.url and not p.done]
        for key, placement in orphans:
            self._release(placement)
            if not isinstance(placement.payload, dict):
                # scatter-adopted (no recorded spec): nothing to
                # resubmit with -- drop it; the read path 404s and the
                # submitter's idempotent resubmit recreates it
                self._placements.pop(key, None)
                continue
            target = await self._forward_submit(
                key, placement.payload, exclude=(dead.url,),
                reroute_reason=reason, obs_ctx=placement.trace)
            if target is None:
                # no survivor took it; the placement stays pointed at
                # the dead node and the next poll retries the re-route
                log.warning("no survivor accepted orphan %s from %s",
                            key[:12], dead.url)

    # ------------------------------------------------------------------
    # Durability: journal writes, crash recovery, standby tail/takeover
    # ------------------------------------------------------------------

    def _journal_place(self, key: str, placement: _Placement,
                       reroute_reason: Optional[str] = None) -> None:
        """Journal one (re)placement.  Reroutes carry the full payload
        too, so a torn ``place`` record still replays to a live entry."""
        fields: Dict[str, Any] = {
            "runner": placement.runner, "payload": placement.payload,
            "trace": placement.trace, "done": placement.done}
        if reroute_reason is not None:
            fields["reason"] = reroute_reason
        self._journal_append(
            "place" if reroute_reason is None else "reroute",
            key, **fields)

    def _journal_append(self, op: str, key: str, **fields: Any) -> None:
        """Append one record, containing every failure mode.

        A torn write (``journal.write`` fault, disk error) loses only
        that record -- recovery reconciliation plus content-hash
        idempotency re-resolve whatever it described, so the router
        keeps serving.  :class:`FencedOut` is the one exception that
        changes behavior: a newer term exists, so this node demotes
        itself to shedding rather than racing the new primary.
        """
        if self.journal is None or self.role != "primary" or self.fenced:
            return
        try:
            self.journal.append(op, key, **fields)
        except FencedOut as exc:
            self.fenced = True
            self._m_lease_term.set(exc.lease_term)
            log.error("router fenced out (term %d -> %d): shedding "
                      "until restarted", exc.own_term, exc.lease_term)
            obs.event("fleet.fenced", own_term=exc.own_term,
                      lease_term=exc.lease_term)
        except (faults.InjectedFault, OSError) as exc:
            log.warning("journal append %s/%s failed (contained): %s",
                        op, key[:12], exc)
            obs.event("fleet.journal_write_failed", op=op,
                      key=key[:12], error=str(exc))

    async def _recover(self, table: Dict[str, Dict[str, Any]]) -> None:
        """Reconcile a replayed placement table against the fleet.

        For every undone entry, ask its recorded runner: still
        running -> re-adopt (inflight accounting restored); finished
        -> settle; 404/unreachable/unknown -> resubmit to a survivor
        on the job's ORIGINAL trace.  Content-hash idempotency makes
        the resubmissions safe -- a job that actually completed
        resolves from cache or dedup, never runs twice.
        """
        with obs.span("journal.recover", records=len(table),
                      node=self.node_name):
            adopted = settled = resubmitted = 0
            for key, entry in table.items():
                payload = entry.get("payload")
                if not isinstance(payload, dict):
                    continue          # torn past recovery; nothing to do
                placement = _Placement(entry.get("runner") or "",
                                       payload)
                placement.trace = entry.get("trace")
                self._placements[key] = placement
                if entry.get("done"):
                    placement.done = True
                    continue
                handle = self.handles.get(placement.runner)
                if handle is not None and handle.routable:
                    try:
                        status, data, _ = await self._in_executor(
                            handle.request, "GET", f"/v1/jobs/{key}",
                            None, None, self.forward_timeout_s)
                    except (urllib.error.URLError, OSError) as exc:
                        self._note_forward_failure(handle, exc)
                    else:
                        if status == 200 and isinstance(data, dict):
                            if data.get("done"):
                                self._settle(key, placement,
                                             status=data.get("status"))
                                settled += 1
                            else:
                                placement.counted = True
                                handle.inflight += 1
                                self._m_inflight.set(
                                    handle.inflight, runner=handle.url)
                                adopted += 1
                            continue
                # lost: the runner is gone, amnesiac, or was never
                # recorded -- resubmit anywhere (idempotent)
                await self._forward_submit(
                    key, payload, reroute_reason="recovered",
                    obs_ctx=placement.trace)
                resubmitted += 1
            log.info("journal recovery: %d placement(s) -> %d adopted, "
                     "%d settled, %d resubmitted", len(table), adopted,
                     settled, resubmitted)
            obs.event("fleet.recovered", placements=len(table),
                      adopted=adopted, settled=settled,
                      resubmitted=resubmitted)

    async def _tail_loop(self) -> None:
        """Standby: mirror the primary's journal until it goes dark."""
        while True:
            await asyncio.sleep(self.tail_interval_s)
            try:
                status, data, _ = await self._in_executor(
                    self._primary.request, "GET",
                    f"/v1/journal?since={self._tail_cursor}",
                    None, None, 10.0)
            except (urllib.error.URLError, OSError) as exc:
                self._tail_failures += 1
                log.warning("journal tail failed (%d/%d): %s",
                            self._tail_failures, self.takeover_after,
                            exc)
                if self._tail_failures >= self.takeover_after:
                    await self._takeover()
                    return
                continue
            self._tail_failures = 0
            if status != 200 or not isinstance(data, dict):
                continue              # primary alive but not serving yet
            self._apply_tail(data)
            # pull the primary's own spans too, so the fleet.job root
            # spans survive the primary: a post-failover stitched
            # trace must still have its root
            try:
                spans = await self._in_executor(
                    self._primary.fetch_spans)
            except (urllib.error.URLError, OSError):
                continue
            batch = spans.get("spans") or ()
            if batch:
                self.trace_store.ingest(batch, 0.0, runner="primary")

    def _apply_tail(self, data: Dict[str, Any]) -> None:
        """Fold one ``/v1/journal`` answer into the mirror."""
        if data.get("reset"):
            placements = data.get("placements") or {}
            self._mirror = placements
            if self.journal is not None:
                self.journal.adopt_snapshot(
                    placements, int(data.get("next") or 0),
                    int(data.get("term") or 0))
        else:
            for record in data.get("records") or ():
                if not isinstance(record, dict):
                    continue
                if self.journal is not None:
                    self.journal.append_mirror(record)
                else:
                    apply_record(self._mirror, record)
            if self.journal is not None:
                self._mirror = self.journal.table
        self._tail_cursor = int(data.get("next") or self._tail_cursor)

    async def _takeover(self) -> None:
        """Standby -> primary: fence the old writer, recover, serve."""
        term = None
        if self.journal is not None:
            term = await self._in_executor(self.journal.promote,
                                           self.node_name)
            self._m_lease_term.set(term)
        self.role = "primary"
        self._m_failovers.inc()
        log.warning("standby taking over as primary (term %s) after "
                    "%d missed tails of %s", term,
                    self._tail_failures, self._primary.url)
        obs.event("fleet.takeover", term=term,
                  primary=self._primary.url,
                  placements=len(self._mirror))
        table = (self.journal.table if self.journal is not None
                 else self._mirror)
        await self._probe_all()
        if table:
            await self._recover(dict(table))
        self._probe_task = self._loop.create_task(self._probe_loop())

    # ------------------------------------------------------------------
    # Placement helpers
    # ------------------------------------------------------------------

    def _pick_target(self, key: str,
                     exclude: Iterable[str] = ()
                     ) -> Optional[RunnerHandle]:
        """Shard owner, unless overloaded -- then the lightest node."""
        candidates = [h for h in self.routable()
                      if h.url not in set(exclude)]
        if not candidates:
            return None
        owner_url = self.ring.owner(
            key, exclude={h.url for h in self.handles.values()
                          if h not in candidates})
        owner = self.handles.get(owner_url) if owner_url else None
        if owner is None:
            return min(candidates, key=lambda h: h.load())
        if owner.load() >= self.steal_threshold:
            lightest = min(candidates, key=lambda h: h.load())
            if lightest is not owner:
                self._m_steals.inc(runner=lightest.url)
                obs.event("fleet.steal", key=key[:12],
                          owner=owner.url, target=lightest.url,
                          owner_load=owner.load())
                return lightest
        return owner

    def _track(self, key: str, payload: Dict[str, Any],
               handle: RunnerHandle, done: bool,
               reserved: bool = False,
               obs_ctx: Optional[Dict[str, str]] = None) -> _Placement:
        """Record where ``key`` lives.  With ``reserved`` the caller
        already holds one :meth:`_reserve` slot on ``handle``; an
        undone placement adopts it, a done one gives it back."""
        placement = self._placements.get(key)
        if placement is None:
            placement = _Placement(handle.url, payload)
            self._placements[key] = placement
        else:
            self._release(placement)
            placement.runner = handle.url
        if obs_ctx is not None and placement.trace is None:
            # first writer wins: the job's root context survives every
            # later reroute/resubmission, keeping one trace id for life
            placement.trace = obs_ctx
        placement.done = done
        if not done:
            placement.counted = True
            if not reserved:
                handle.inflight += 1
            self._m_inflight.set(handle.inflight, runner=handle.url)
        elif reserved:
            self._unreserve(handle)
        self._m_shard.inc(runner=handle.url)
        return placement

    def _reserve(self, handle: RunnerHandle) -> None:
        """Count a placement-in-progress *before* the forward runs, so
        concurrent submits see each other's load and work stealing
        balances a burst instead of reading every queue as empty."""
        handle.inflight += 1
        self._m_inflight.set(handle.inflight, runner=handle.url)

    def _unreserve(self, handle: RunnerHandle) -> None:
        handle.inflight = max(0, handle.inflight - 1)
        self._m_inflight.set(handle.inflight, runner=handle.url)

    def _release(self, placement: _Placement) -> None:
        if not placement.counted:
            return
        placement.counted = False
        handle = self.handles.get(placement.runner)
        if handle is not None:
            handle.inflight = max(0, handle.inflight - 1)
            self._m_inflight.set(handle.inflight, runner=handle.url)

    def _settle(self, key: str, placement: _Placement,
                status: Optional[str] = None) -> None:
        if not placement.done:
            placement.done = True
            self._release(placement)
            self._journal_append("done", key, status=status)

    def _note_forward_failure(self, handle: RunnerHandle,
                              exc: BaseException) -> None:
        """A forward died on the wire: treat it like a failed probe."""
        handle.consecutive_failures += 1
        handle.last_error = f"{type(exc).__name__}: {exc}"
        if handle.state in ("healthy", "draining", "unknown"):
            handle.state = "unhealthy"
            log.warning("runner %s unreachable on forward: %s",
                        handle.url, handle.last_error)
            obs.event("fleet.runner_state", runner=handle.url,
                      before="healthy", after="unhealthy")

    async def _in_executor(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, lambda: fn(*args))

    # ------------------------------------------------------------------
    # Forwarding core
    # ------------------------------------------------------------------

    async def _forward_submit(self, key: str, payload: Dict[str, Any],
                              exclude: Iterable[str] = (),
                              reroute_reason: Optional[str] = None,
                              obs_ctx: Optional[Dict[str, str]] = None):
        """Place one job; returns ``(handle, status, data)`` or None.

        Tries the sharded target first, then every other routable
        runner once; wire failures mark the runner unhealthy and move
        on (node loss is the router's problem, never the job's).

        ``obs_ctx`` is the job's root span context: the ``fleet.route``
        span parents onto it, and the context travels to the runner as
        a ``traceparent`` header -- for reroutes the *original* context
        is passed back in, so a re-placed job stays on its first trace.
        """
        tried = set(exclude)
        last_refusal = None
        while True:
            target = self._pick_target(key, exclude=tried)
            if target is None:
                return last_refusal
            tried.add(target.url)
            self._reserve(target)
            with obs.span("fleet.route", parent=obs_ctx, key=key[:12],
                          runner=target.url,
                          rerouted=reroute_reason or "no"):
                ctx = obs.current_context() or obs_ctx
                headers = None
                if ctx:
                    traceparent = obs.format_traceparent(ctx)
                    if traceparent:
                        headers = {"traceparent": traceparent}
                try:
                    status, data, _ = await self._in_executor(
                        target.request, "POST", "/v1/jobs", payload,
                        headers, self.forward_timeout_s)
                except (urllib.error.URLError, OSError) as exc:
                    self._unreserve(target)
                    self._note_forward_failure(target, exc)
                    self._m_reroutes.inc(reason="forward_error")
                    continue
            code = ((data.get("error") or {}).get("code")
                    if isinstance(data, dict) else None)
            if status in (200, 201):
                placement = self._track(key, payload, target,
                                        done=bool(data.get("done")),
                                        reserved=True, obs_ctx=obs_ctx)
                self._journal_place(key, placement,
                                    reroute_reason=reroute_reason)
                if reroute_reason is not None:
                    self._m_reroutes.inc(reason=reroute_reason)
                self.breaker.record_success()
                return target, status, data, placement
            self._unreserve(target)
            if code in _REFUSAL_CODES:
                # alive but shedding; remember the refusal (it carries
                # Retry-After) and offer the job elsewhere
                last_refusal = (target, status, data, None)
                continue
            # anything else (e.g. validation) is a real answer
            return target, status, data, None

    async def _forward_any(self, method: str, path: str):
        """Forward a stateless catalog read to any routable runner."""
        for handle in self.routable():
            try:
                status, data, _ = await self._in_executor(
                    handle.request, method, path, None, None,
                    self.forward_timeout_s)
                return status, data
            except (urllib.error.URLError, OSError) as exc:
                self._note_forward_failure(handle, exc)
        raise ServerError("no routable runner for catalog read",
                          status=503, code="unavailable")

    # ------------------------------------------------------------------
    # HTTP surface
    # ------------------------------------------------------------------

    def _observe_request(self, route: str, status: int,
                         elapsed_s: float) -> None:
        self._m_requests.inc(route=f"fleet.{route}", status=str(status))
        self._m_latency.observe(elapsed_s, route=f"fleet.{route}")
        self.slo.observe(ok=status < 500, latency_s=elapsed_s)

    def _route(self, method: str, path: str, query):
        parts = [p for p in path.split("/") if p]
        if path == "/healthz" and method == "GET":
            return "healthz", self._h_healthz, ()
        if path == "/metrics" and method == "GET":
            return "metrics", self._h_metrics, (query.get("local"),)
        if parts[:1] == [protocol.API_VERSION]:
            rest = parts[1:]
            if (len(rest) == 3 and rest[:2] == ["obs", "traces"]
                    and method == "GET"):
                return "obs_trace", self._h_obs_trace, (rest[2],)
            if rest == ["obs", "summary"] and method == "GET":
                return "obs_summary", self._h_obs_summary, ()
            if rest == ["obs", "spans"] and method == "GET":
                return "obs_spans", self._h_obs_spans, (
                    query.get("since", "0"),)
            if rest == ["journal"] and method == "GET":
                return "journal", self._h_journal, (
                    query.get("since", "0"),)
            if rest in (["apps"], ["modes"]) and method == "GET":
                return rest[0], self._h_catalog, (rest[0],)
            if rest == ["jobs"] and method == "POST":
                return "submit", self._h_submit, ()
            if rest == ["jobs"] and method == "GET":
                return "jobs", self._h_jobs, ()
            if len(rest) == 2 and rest[0] == "jobs" and method == "GET":
                return "job", self._h_job, (rest[1],)
            if (len(rest) == 3 and rest[0] == "jobs"
                    and rest[2] == "result" and method == "GET"):
                return "result", self._h_result, (rest[1],)
            if (len(rest) == 3 and rest[0] == "jobs"
                    and rest[2] == "events" and method == "GET"):
                return "events", self._h_events, (rest[1],)
        raise ServerError(f"no route for {method} {path}",
                          status=404, code="not_found")

    def _shed_unless_primary(self) -> None:
        """Job traffic is a primary-only privilege.

        A standby sheds with a retryable 503 until takeover; a fenced
        ex-primary sheds forever (a newer term owns the journal) -- in
        both cases the client's endpoint rotation lands the request on
        the node that is actually serving.
        """
        if self.role == "standby":
            raise ServerError(
                f"standby router (tailing {self._primary.url}); "
                f"not serving jobs until takeover",
                status=503, code="unavailable")
        if self.fenced:
            raise ServerError(
                "router fenced out by a newer primary; use the "
                "standby endpoint", status=503, code="unavailable")

    async def _h_healthz(self, writer, body, headers) -> int:
        healthy = self.routable()
        ok = (bool(healthy) and not self.draining
              and self.role == "primary" and not self.fenced)
        payload = {
            "status": "ok" if ok else "degraded",
            "version": repro.__version__,
            "now": obs.now(),
            "role": self.role,
            "fenced": self.fenced,
            "node": self.node_name,
            "journal": (self.journal.stats()
                        if self.journal is not None else None),
            "slo": self.slo.snapshot(),
            "fleet": {
                "healthy": len(healthy),
                "total": len(self.handles),
                "steal_threshold": self.steal_threshold,
                "placements": len(self._placements),
                "inflight": sum(h.inflight
                                for h in self.handles.values()),
                "breaker": self.breaker.snapshot(),
                "runners": [h.snapshot()
                            for h in self.handles.values()],
            },
        }
        return await self._send_json(writer, 200 if ok else 503, payload)

    async def _h_metrics(self, writer, body, headers,
                         local: Optional[str]) -> int:
        """Fleet-federated Prometheus dump (``?local=1`` skips peers).

        Every reachable runner's ``/metrics`` is merged in with a
        ``runner="<url>"`` label, so one scrape of the router sees the
        whole fleet; a runner that fails mid-scrape is simply absent
        from that pass.
        """
        text = obs.REGISTRY.to_prometheus()
        if not local:
            peers = []
            for handle in self.handles.values():
                if handle.state not in ("healthy", "draining",
                                        "rejected"):
                    continue
                try:
                    peer_text = await self._in_executor(
                        handle.fetch_text, "/metrics")
                except (urllib.error.URLError, OSError):
                    continue
                peers.append((handle.url, peer_text))
            if peers:
                text = obs.federate_metrics(text, peers)
        return await self._send(writer, 200, text.encode("utf-8"),
                                "text/plain; version=0.0.4")

    # -- fleet observability: stitched traces + summary -----------------

    async def _h_obs_trace(self, writer, body, headers,
                           job_id: str) -> int:
        """One whole-fleet Perfetto trace for a routed job.

        A standby answers from its journal mirror -- the trace context
        is journaled with the placement, so stitched traces survive
        the primary that opened them.
        """
        placement = self._placements.get(job_id)
        trace_ctx = placement.trace if placement is not None else (
            (self._mirror.get(job_id) or {}).get("trace"))
        if placement is None and trace_ctx is None:
            raise JobNotFound(f"no job {job_id!r} routed by this fleet")
        if trace_ctx is None:
            raise ServerError(
                f"no trace recorded for job {job_id[:12]} "
                f"(tracing was off when it was placed)",
                status=404, code="not_found")
        # pull fresh batches so a just-finished job reads complete
        await self._collect_spans()
        trace_id = trace_ctx.get("trace_id")
        spans = self.trace_store.spans(trace_id or "")
        if not spans:
            raise ServerError(
                f"trace {trace_id} has no collected spans yet",
                status=404, code="not_found")
        trace = obs.chrome_trace(spans)
        trace["traceId"] = trace_id
        trace["jobId"] = job_id
        return await self._send_json(writer, 200, trace)

    async def _h_obs_summary(self, writer, body, headers) -> int:
        payload = {
            "role": "router",
            "fleet_role": self.role,
            "fenced": self.fenced,
            "node": self.node_name,
            "journal": (self.journal.stats()
                        if self.journal is not None else None),
            "version": repro.__version__,
            "now": obs.now(),
            "slo": self.slo.snapshot(),
            "traces": {
                "count": len(self.trace_store),
                "dropped": self.trace_store.dropped,
            },
            "spans": {
                "enabled": self.span_buffer is not None,
                "buffered": (len(self.span_buffer)
                             if self.span_buffer is not None else 0),
                "dropped": (self.span_buffer.dropped
                            if self.span_buffer is not None else 0),
            },
            "fleet": {
                "healthy": len(self.routable()),
                "total": len(self.handles),
                "placements": len(self._placements),
                "inflight": sum(h.inflight
                                for h in self.handles.values()),
                "breaker": self.breaker.snapshot(),
            },
            "runners": [h.snapshot() for h in self.handles.values()],
        }
        return await self._send_json(writer, 200, payload)

    async def _h_obs_spans(self, writer, body, headers,
                           since: str) -> int:
        """Drain the ROUTER's own span buffer (standbys tail this so
        the fleet.job root spans survive a primary crash)."""
        try:
            cursor = int(since)
        except (TypeError, ValueError):
            raise ServerError(f"bad since cursor {since!r}",
                              status=400, code="bad_request") from None
        if self.span_buffer is None:
            payload = {"enabled": False, "spans": [], "next": 0,
                       "dropped": 0, "now": obs.now()}
        else:
            spans, next_seq = self.span_buffer.since(cursor)
            payload = {"enabled": True, "spans": spans,
                       "next": next_seq,
                       "dropped": self.span_buffer.dropped,
                       "now": obs.now()}
        return await self._send_json(writer, 200, payload)

    async def _h_journal(self, writer, body, headers,
                         since: str) -> int:
        """The standby's tail cursor into this primary's journal."""
        if self.journal is None:
            raise ServerError(
                "this router runs without a journal (--journal-dir)",
                status=404, code="not_found")
        try:
            cursor = int(since)
        except (TypeError, ValueError):
            raise ServerError(f"bad since cursor {since!r}",
                              status=400, code="bad_request") from None
        payload = self.journal.tail(cursor)
        payload["role"] = self.role
        payload["node"] = self.node_name
        return await self._send_json(writer, 200, payload)

    async def _h_catalog(self, writer, body, headers, what: str) -> int:
        status, data = await self._forward_any("GET", f"/v1/{what}")
        return await self._send_json(writer, status, data)

    async def _h_jobs(self, writer, body, headers) -> int:
        self._shed_unless_primary()
        merged: Dict[str, Dict[str, Any]] = {}
        for handle in self.routable():
            try:
                status, data, _ = await self._in_executor(
                    handle.request, "GET", "/v1/jobs", None, None,
                    self.forward_timeout_s)
            except (urllib.error.URLError, OSError) as exc:
                self._note_forward_failure(handle, exc)
                continue
            if status == 200:
                for job in data.get("jobs", ()):
                    merged.setdefault(job.get("id"), job)
        return await self._send_json(writer, 200,
                                     {"jobs": list(merged.values())})

    async def _h_submit(self, writer, body, headers) -> int:
        self._shed_unless_primary()
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise protocol.JobValidationError(
                f"body is not JSON: {exc}") from None
        job = protocol.job_from_payload(payload)
        key = job.key()
        if self.draining:
            return await self._send_json(writer, 503, protocol._body(
                "unavailable", "router is shutting down",
                retry_after_s=1.0))
        if not self.breaker.allow():
            return await self._send_json(writer, 429, protocol._body(
                "overloaded",
                f"fleet admission breaker open after "
                f"{self.breaker.trips} trip(s)",
                retry_after_s=self.breaker.cooldown_s))
        placement = self._placements.get(key)
        if placement is not None and placement.trace is not None:
            # resubmit-dedup: the job already has a root span; attach
            # this placement attempt to the ORIGINAL trace
            return await self._submit_placed(writer, key, payload,
                                             placement, placement.trace)
        # a fresh job opens the fleet-wide root span here at the
        # router, parented on the client's traceparent when present
        # (malformed/absent -> a fresh root, never an error)
        client_ctx = parse_trace_parent(headers)
        with obs.span("fleet.job", parent=client_ctx, key=key[:12],
                      app=payload.get("app"),
                      mode=payload.get("mode")) as root:
            obs_ctx = (root.context() if isinstance(root, obs.Span)
                       else client_ctx)
            return await self._submit_placed(writer, key, payload,
                                             placement, obs_ctx)

    async def _submit_placed(self, writer, key: str,
                             payload: Dict[str, Any],
                             placement: Optional[_Placement],
                             obs_ctx: Optional[Dict[str, str]]) -> int:
        """Route one admitted submission (sticky dedup, then anywhere)."""
        # sticky dedup: a key we already placed goes back to its node
        # (whose content-hash dedup makes the resubmission free)
        exclude = ()
        if placement is not None:
            handle = self.handles.get(placement.runner)
            if handle is not None and handle.routable:
                outcome = await self._forward_submit(
                    key, payload, exclude=[
                        h.url for h in self.handles.values()
                        if h.url != placement.runner],
                    obs_ctx=obs_ctx)
                if outcome is not None:
                    _, status, data, _ = outcome
                    return await self._send_json(writer, status, data)
            exclude = (placement.runner,)
        outcome = await self._forward_submit(
            key, payload,
            exclude=exclude if placement is not None else (),
            obs_ctx=obs_ctx)
        if outcome is None:
            self.breaker.record_failure()
            return await self._send_json(writer, 503, protocol._body(
                "unavailable",
                f"no routable runner among {len(self.handles)} "
                f"(fleet breaker at {self.breaker.snapshot()['failures']}"
                f" strike(s))",
                retry_after_s=self.probe_interval_s))
        _, status, data, _ = outcome
        return await self._send_json(writer, status, data)

    # -- per-job reads --------------------------------------------------

    def _placement_of(self, key: str) -> _Placement:
        placement = self._placements.get(key)
        if placement is None:
            raise JobNotFound(f"no job {key!r} routed by this fleet")
        return placement

    async def _h_job(self, writer, body, headers, key: str) -> int:
        self._shed_unless_primary()
        status, data = await self._forward_job_read(key, f"/v1/jobs/{key}")
        return await self._send_json(writer, status, data)

    async def _h_result(self, writer, body, headers, key: str) -> int:
        self._shed_unless_primary()
        status, data = await self._forward_job_read(
            key, f"/v1/jobs/{key}/result")
        return await self._send_json(writer, status, data)

    async def _scatter_adopt(self, key: str) -> Optional[_Placement]:
        """Rebuild a forgotten placement by asking every runner.

        A torn ``place`` record (crash mid-append) loses a placement
        the fleet still holds; instead of 404ing a job that is alive,
        scatter the read and re-adopt -- and re-journal -- wherever it
        answers.  The adopted placement has no payload (the runner's
        job record carries only app/mode), so it can serve reads but
        not resubmissions; if its runner later dies too, the read path
        drops it and the client's idempotent resubmit is the backstop.
        """
        for handle in self.routable():
            try:
                status, data, _ = await self._in_executor(
                    handle.request, "GET", f"/v1/jobs/{key}",
                    None, None, self.forward_timeout_s)
            except (urllib.error.URLError, OSError) as exc:
                self._note_forward_failure(handle, exc)
                continue
            if status != 200 or not isinstance(data, dict):
                continue
            placement = _Placement(handle.url, None)
            placement.done = bool(data.get("done"))
            self._placements[key] = placement
            if not placement.done:
                placement.counted = True
                handle.inflight += 1
                self._m_inflight.set(handle.inflight, runner=handle.url)
            self._m_readopts.inc()
            log.warning("re-adopted unjournaled job %s from %s "
                        "(done=%s)", key[:12], handle.url,
                        placement.done)
            obs.event("fleet.readopted", key=key[:12],
                      runner=handle.url, done=placement.done)
            self._journal_place(key, placement)
            return placement
        return None

    async def _forward_job_read(self, key: str, path: str):
        """Read job state from its runner, healing lost placements.

        A wire error or a runner that forgot the job (it restarted)
        triggers a resubmission to a survivor and answers ``202
        pending`` -- the polling client never observes the failover.
        """
        placement = self._placements.get(key)
        if placement is None:
            placement = await self._scatter_adopt(key)
        if placement is None:
            raise JobNotFound(f"no job {key!r} routed by this fleet")
        handle = self.handles.get(placement.runner)
        reason = None
        if handle is None or handle.state == "unhealthy":
            reason = "node_loss"
        else:
            try:
                status, data, _ = await self._in_executor(
                    handle.request, "GET", path, None, None,
                    self.forward_timeout_s)
            except (urllib.error.URLError, OSError) as exc:
                self._note_forward_failure(handle, exc)
                reason = "node_loss"
            else:
                code = ((data.get("error") or {}).get("code")
                        if isinstance(data, dict) else None)
                if code == "not_found" and not placement.done:
                    # the runner restarted and lost its job table
                    reason = "lost_state"
                else:
                    done_now = (bool(data.get("done"))
                                if isinstance(data, dict) else False)
                    if status == 200 and path.endswith("/result"):
                        done_now = True    # a ready result is terminal
                    if done_now or code not in (None, "pending"):
                        self._settle(key, placement,
                                     status=(data.get("status")
                                             if isinstance(data, dict)
                                             else None))
                    return status, data
        self._release(placement)
        if not isinstance(placement.payload, dict):
            # a scatter-adopted placement has no spec to resubmit;
            # forget it so the caller's idempotent resubmit can land
            self._placements.pop(key, None)
            raise JobNotFound(
                f"job {key!r} lost with its runner and no recorded "
                f"payload to resubmit; resubmit it (idempotent)")
        await self._forward_submit(
            key, placement.payload, exclude=(placement.runner,),
            reroute_reason=reason, obs_ctx=placement.trace)
        return 202, protocol._body(
            "pending", f"job {key[:12]} re-routed after {reason}",
            key=key, status="queued", attempts=0, retry_after_s=1.0)

    async def _h_events(self, writer, body, headers, key: str) -> int:
        """Byte-pipe the runner's SSE stream through to the client."""
        self._shed_unless_primary()
        placement = self._placement_of(key)
        parsed = urllib.parse.urlsplit(placement.runner)
        try:
            upstream_r, upstream_w = await asyncio.open_connection(
                parsed.hostname, parsed.port or 80)
        except OSError:
            raise ServerError(
                f"runner {placement.runner} unreachable for event "
                f"stream", status=502, code="unavailable") from None
        try:
            # a reconnecting client's resume cursor rides through to
            # the runner, which replays only the missed events
            resume = ""
            last_id = headers.get("last-event-id")
            if last_id:
                resume = f"Last-Event-ID: {last_id}\r\n"
            request = (f"GET /v1/jobs/{key}/events HTTP/1.1\r\n"
                       f"Host: {parsed.netloc}\r\n"
                       f"Accept: text/event-stream\r\n"
                       f"{resume}"
                       f"Connection: close\r\n\r\n")
            upstream_w.write(request.encode("latin-1"))
            await upstream_w.drain()
            while True:
                chunk = await upstream_r.read(4096)
                if not chunk:
                    break
                writer.write(chunk)
                await writer.drain()
        except ConnectionError:
            pass
        finally:
            try:
                upstream_w.close()
                await upstream_w.wait_closed()
            except Exception:           # noqa: BLE001
                pass
        return 200
