"""Consistent hashing: job content hash -> shard-owner runner.

A classic hash ring with virtual nodes: each runner URL is hashed onto
the ring at ``replicas`` points, and a job key's owner is the first
ring point clockwise from the key's own hash.  Two properties matter
to the fleet:

- **stability** -- adding or removing one runner re-assigns only the
  ~1/N keys adjacent to its ring points, so a node restart does not
  reshuffle the whole placement (and with it every warm cache);
- **determinism** -- the mapping depends only on the member URLs, so
  the router, a rebooted router, and any peer-fetching runner all
  compute the same owner for a key without coordination.

Keys and nodes are hashed with sha256 (the job keys already *are*
sha256 hex, but re-hashing keeps arbitrary strings uniform).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

#: virtual nodes per member: keeps the per-node share within a few
#: percent of 1/N for small fleets without bloating ring rebuilds
DEFAULT_REPLICAS = 64


def _point(value: str) -> int:
    return int.from_bytes(
        hashlib.sha256(value.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over runner URLs (or any string ids)."""

    def __init__(self, nodes: Iterable[str] = (),
                 replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._nodes: List[str] = []
        self._points: List[Tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[str]:
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.append(node)
        for i in range(self.replicas):
            bisect.insort(self._points, (_point(f"{node}#{i}"), node))

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.remove(node)
        self._points = [(p, n) for p, n in self._points if n != node]

    # ------------------------------------------------------------------
    def owner(self, key: str,
              exclude: Iterable[str] = ()) -> Optional[str]:
        """The node owning ``key``, skipping ``exclude`` members.

        With every member excluded (or an empty ring) returns None.
        """
        for node in self.preference(key):
            if node not in exclude:
                return node
        return None

    def preference(self, key: str) -> List[str]:
        """All nodes in fail-over order for ``key`` (owner first).

        Walking clockwise from the key's hash yields a deterministic
        ordering every fleet member agrees on -- the peer-fetch tier
        tries owners in exactly this order.
        """
        if not self._points:
            return []
        start = bisect.bisect(self._points, (_point(key), ""))
        seen: Dict[str, None] = {}
        count = len(self._points)
        for i in range(count):
            node = self._points[(start + i) % count][1]
            if node not in seen:
                seen[node] = None
                if len(seen) == len(self._nodes):
                    break
        return list(seen)

    def __repr__(self):
        return (f"<HashRing nodes={len(self._nodes)} "
                f"replicas={self.replicas}>")
