"""repro.fleet -- the multi-node job fabric.

Scales the design-generation service past one process by fanning
``/v1`` jobs across N runner nodes (each a ``python -m repro serve``
instance), with a shared-nothing cache tier stitched together over
HTTP:

- :mod:`repro.fleet.hashring` -- consistent hashing from job content
  hash to shard-owner runner, stable under node churn;
- :mod:`repro.fleet.runner` -- :class:`RunnerHandle` (the router's
  view of one node: health probe, version, drain and restart state,
  in-flight accounting) and :class:`RunnerProcess` (a supervised local
  ``repro serve`` subprocess for benchmarks, chaos tests and CI);
- :mod:`repro.fleet.peers` -- :class:`PeerFetchCache`, a
  :class:`~repro.service.cache.CacheBackend` that fills local misses
  from the shard owner's ``/v1/cache/{key}`` before recomputing;
- :mod:`repro.fleet.router` -- :class:`FleetRouter`, the front door:
  shard routing with work stealing, node-loss re-routing that never
  consumes job retries, a fleet admission breaker, aggregated
  ``/healthz`` and router-side ``repro_fleet_*`` metrics;
- :mod:`repro.fleet.durable` -- :class:`RouterJournal` (the
  crash-consistent write-ahead journal behind the placement table),
  :class:`LeaseFile` (monotonic fencing token) and the shared
  :func:`apply_record` reducer that replay, warm standbys and tests
  all fold records through.

Start a fleet on localhost, with a durable control plane::

    python -m repro serve --port 8001 &
    python -m repro serve --port 8002 &
    python -m repro router --port 8000 --journal-dir .journal \\
        --runners http://127.0.0.1:8001,http://127.0.0.1:8002 &
    python -m repro router --port 8010 --journal-dir .journal \\
        --runners http://127.0.0.1:8001,http://127.0.0.1:8002 \\
        --standby-of http://127.0.0.1:8000

Clients keep using :class:`repro.client.ReproClient` unchanged -- the
router speaks the same ``/v1`` wire schema as a single runner, and the
client accepts ``"http://primary,http://standby"`` endpoint lists for
connect-error failover.
"""

from repro.fleet.durable import (
    FencedOut, LeaseFile, RouterJournal, apply_record,
)
from repro.fleet.hashring import HashRing
from repro.fleet.peers import PeerFetchCache
from repro.fleet.router import FleetRouter
from repro.fleet.runner import RouterProcess, RunnerHandle, RunnerProcess

__all__ = [
    "FencedOut", "FleetRouter", "HashRing", "LeaseFile",
    "PeerFetchCache", "RouterJournal", "RouterProcess", "RunnerHandle",
    "RunnerProcess", "apply_record",
]
