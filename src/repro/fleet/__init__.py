"""repro.fleet -- the multi-node job fabric.

Scales the design-generation service past one process by fanning
``/v1`` jobs across N runner nodes (each a ``python -m repro serve``
instance), with a shared-nothing cache tier stitched together over
HTTP:

- :mod:`repro.fleet.hashring` -- consistent hashing from job content
  hash to shard-owner runner, stable under node churn;
- :mod:`repro.fleet.runner` -- :class:`RunnerHandle` (the router's
  view of one node: health probe, version, drain and restart state,
  in-flight accounting) and :class:`RunnerProcess` (a supervised local
  ``repro serve`` subprocess for benchmarks, chaos tests and CI);
- :mod:`repro.fleet.peers` -- :class:`PeerFetchCache`, a
  :class:`~repro.service.cache.CacheBackend` that fills local misses
  from the shard owner's ``/v1/cache/{key}`` before recomputing;
- :mod:`repro.fleet.router` -- :class:`FleetRouter`, the front door:
  shard routing with work stealing, node-loss re-routing that never
  consumes job retries, a fleet admission breaker, aggregated
  ``/healthz`` and router-side ``repro_fleet_*`` metrics.

Start a fleet on localhost::

    python -m repro serve --port 8001 &
    python -m repro serve --port 8002 &
    python -m repro router --port 8000 \\
        --runners http://127.0.0.1:8001,http://127.0.0.1:8002

Clients keep using :class:`repro.client.ReproClient` unchanged -- the
router speaks the same ``/v1`` wire schema as a single runner.
"""

from repro.fleet.hashring import HashRing
from repro.fleet.peers import PeerFetchCache
from repro.fleet.router import FleetRouter
from repro.fleet.runner import RunnerHandle, RunnerProcess

__all__ = [
    "FleetRouter", "HashRing", "PeerFetchCache", "RunnerHandle",
    "RunnerProcess",
]
