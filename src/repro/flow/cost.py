"""Analytical cost evaluation and budget feedback (Fig. 3 bottom, §IV-D).

Two roles:

- during a flow, :class:`BudgetedStrategy` wraps a PSA strategy with
  the Fig. 3 cost loop: "IF cost > budget: revise design" -- when the
  chosen branch's estimated execution cost exceeds the user's budget,
  the decision is revised toward cheaper branches before the flow
  continues;
- for the Fig. 6 analysis, :class:`CostEvaluator` computes the relative
  cost of executing an application on differently-priced cloud
  resources ("Cloud resources are typically priced based on the time
  for which they are provisioned").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.flow.psa import PSADecision, PSAStrategy

if TYPE_CHECKING:
    from repro.flow.context import FlowContext


@dataclass
class CloudPriceTable:
    """$/hour for provisioning each resource (EC2-style on-demand)."""

    prices_per_hour: Dict[str, float] = field(default_factory=lambda: {
        # representative on-demand rates for instances carrying each
        # device class (the absolute values only matter through ratios)
        "epyc7543": 1.2,
        "gtx1080ti": 1.8,
        "rtx2080ti": 2.4,
        "arria10": 2.9,
        "stratix10": 5.8,
    })

    def price(self, device: str) -> float:
        try:
            return self.prices_per_hour[device]
        except KeyError:
            raise KeyError(f"no price for device {device!r}") from None

    def with_price(self, device: str, per_hour: float) -> "CloudPriceTable":
        prices = dict(self.prices_per_hour)
        prices[device] = per_hour
        return CloudPriceTable(prices)


@dataclass
class CostEvaluator:
    """Execution cost = provisioned time x resource price."""

    prices: CloudPriceTable = field(default_factory=CloudPriceTable)

    def execution_cost(self, time_s: float, device: str) -> float:
        """$ for one hotspot execution on ``device``."""
        return time_s / 3600.0 * self.prices.price(device)

    def relative_cost(self, time_a: float, device_a: str,
                      time_b: float, device_b: str) -> float:
        """Cost(A)/Cost(B) under the current price table (Fig. 6 y-axis)."""
        return (self.execution_cost(time_a, device_a)
                / self.execution_cost(time_b, device_b))

    def crossover_price_ratio(self, time_a: float, time_b: float) -> float:
        """Price ratio p_A/p_B at which A and B cost the same.

        A is cheaper while p_A/p_B < time_b/time_a; e.g. with the
        paper's AdPredictor (FPGA 3.2x faster than GPU), FPGA execution
        stays cheaper until FPGA time is priced above 3.2x the GPU.
        """
        if time_a <= 0:
            return float("inf")
        return time_b / time_a


#: branch preference order used when the budget forces a revision:
#: accelerators first (performance), host OpenMP as the cheap fallback
_REVISION_ORDER = ("omp",)


class BudgetedStrategy(PSAStrategy):
    """Wrap a strategy with the Fig. 3 cost-evaluation feedback loop.

    After the inner strategy selects a branch, the estimated cost of
    executing the hotspot on that branch's device class is compared
    with ``budget_per_run``.  Over budget -> the decision is *revised*:
    cheaper branches are tried in order, and if nothing fits the
    cheapest option is taken with a warning (matching "revise design"
    rather than failing the flow).
    """

    #: coarse per-branch speedup guesses used only for pre-design cost
    #: screening (the real model runs after code generation)
    _SCREEN_SPEEDUP = {"gpu": 50.0, "fpga": 15.0, "omp": 25.0}
    _SCREEN_DEVICE = {"gpu": "rtx2080ti", "fpga": "stratix10",
                      "omp": "epyc7543"}

    def __init__(self, inner: PSAStrategy, budget_per_run: float,
                 evaluator: Optional[CostEvaluator] = None):
        self.inner = inner
        self.budget = budget_per_run
        self.evaluator = evaluator or CostEvaluator()

    def _estimate(self, ctx: "FlowContext", path: str) -> float:
        t_ref = ctx.reference_time()
        speedup = self._SCREEN_SPEEDUP.get(path, 1.0)
        device = self._SCREEN_DEVICE.get(path, "epyc7543")
        return self.evaluator.execution_cost(t_ref / speedup, device)

    def select(self, ctx: "FlowContext", name: str,
               paths: List[str]) -> PSADecision:
        decision = self.inner.select(ctx, name, paths)
        if not decision.selected:
            return decision
        revised: List[str] = []
        for path in decision.selected:
            cost = self._estimate(ctx, path)
            if cost <= self.budget:
                decision.reasons.append(
                    f"cost evaluation: {path} ~ ${cost:.2e}/run within "
                    f"budget ${self.budget:.2e}")
                revised.append(path)
                continue
            decision.reasons.append(
                f"cost evaluation: {path} ~ ${cost:.2e}/run EXCEEDS "
                f"budget ${self.budget:.2e}: revising design")
            replacement = None
            for fallback in _REVISION_ORDER:
                if fallback in paths and fallback != path:
                    fb_cost = self._estimate(ctx, fallback)
                    if fb_cost <= self.budget:
                        replacement = fallback
                        decision.reasons.append(
                            f"revised to {fallback} "
                            f"(~${fb_cost:.2e}/run)")
                        break
            if replacement is None:
                decision.reasons.append(
                    "no branch fits the budget; keeping the original "
                    "selection with a warning")
                replacement = path
            revised.append(replacement)
        decision.selected = list(dict.fromkeys(revised))
        return decision
