"""Path Selection Automation strategies.

A PSA strategy decides which paths to take at a branch point, "using
information accrued from target-independent analysis tasks" (§II-B).
Three strategies cover the paper's experiments:

- :class:`InformedTargetSelection` -- the Fig. 3 strategy for branch
  point A (transfer-vs-CPU test, FLOPs/B threshold X, parallel outer
  loop, fully-unrollable dependent inner loops);
- :class:`SelectAll` -- the *uninformed* mode of §IV-B ("modify branch
  point A to automatically select all paths") and the default at the
  device branches B and C ("the current implementation automatically
  selects both paths at B and C");
- :class:`SelectNamed` -- fixed selection, for custom flows and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.platforms.interconnect import TransferModel

if TYPE_CHECKING:
    from repro.flow.context import FlowContext


@dataclass
class PSADecision:
    """A recorded branch decision (kept in ``ctx.facts['psa:<branch>']``)."""

    branch: str
    selected: List[str]
    reasons: List[str] = field(default_factory=list)

    def explain(self) -> str:
        lines = [f"branch {self.branch} -> {', '.join(self.selected)}"]
        lines += [f"  - {reason}" for reason in self.reasons]
        return "\n".join(lines)


class PSAStrategy:
    """Base: decide which of ``paths`` to take at branch ``name``."""

    def select(self, ctx: "FlowContext", name: str,
               paths: List[str]) -> PSADecision:
        raise NotImplementedError


class SelectAll(PSAStrategy):
    """Take every path (uninformed mode / device branches B and C)."""

    def select(self, ctx, name, paths):
        return PSADecision(name, list(paths),
                           ["select-all policy (uninformed / device fan-out)"])


class SelectNamed(PSAStrategy):
    """Always take a fixed subset of paths."""

    def __init__(self, *names: str):
        self.names = list(names)

    def select(self, ctx, name, paths):
        missing = [n for n in self.names if n not in paths]
        if missing:
            raise KeyError(f"branch {name} has no paths {missing}; "
                           f"available: {paths}")
        return PSADecision(name, list(self.names), ["fixed selection"])


class InformedTargetSelection(PSAStrategy):
    """The Fig. 3 strategy for branch point A.

    Decision procedure (quoted tests from the paper):

    1. "Tdata_trnsfr < Tcpu and FLOPs/B > X?" -- offloading must beat
       the transfer cost and the hotspot must be compute-bound.  If
       not: "parallel outer loop?" -> multi-thread CPU, else terminate.
    2. Offload-worthy + "parallel outer loop?":
       - "inner loops w/ deps?" NO -> CPU+GPU;
       - YES -> "can fully unroll?" YES -> CPU+FPGA, NO -> CPU+GPU.
    3. Offload-worthy, outer loop not parallel -> CPU+FPGA (pipelined).

    Aliasing kernel pointer arguments disable offloading entirely (the
    generated accelerator code assumes disjoint buffers).
    """

    #: path names this strategy knows how to choose between
    GPU = "gpu"
    FPGA = "fpga"
    OMP = "omp"

    def __init__(self, intensity_threshold: float = 0.25,
                 transfer_model: Optional[TransferModel] = None):
        #: the tunable X of Fig. 3
        self.intensity_threshold = intensity_threshold
        self.transfer = transfer_model or TransferModel()

    # ------------------------------------------------------------------
    def select(self, ctx: "FlowContext", name: str,
               paths: List[str]) -> PSADecision:
        reasons: List[str] = []
        profile = ctx.kernel_profile()
        intensity = ctx.facts["intensity"]
        alias = ctx.facts.get("alias")

        t_cpu = ctx.reference_time()
        t_xfer = self.transfer.pageable_time(
            profile.transfer_bytes, max(1, profile.kernel_calls))
        t_xfer /= max(1, profile.transfer_amortization)
        flops_per_byte = intensity.flops_per_byte

        reasons.append(
            f"T_data_trnsfr={t_xfer * 1e3:.3f} ms vs T_cpu={t_cpu * 1e3:.3f} ms")
        reasons.append(
            f"FLOPs/B={flops_per_byte:.3f} vs X={self.intensity_threshold}")

        aliasing_ok = alias is None or alias.no_aliasing
        if not aliasing_ok:
            reasons.append("kernel pointer arguments alias: offloading "
                           "disabled")

        offload_worthy = (aliasing_ok and t_xfer < t_cpu
                          and flops_per_byte > self.intensity_threshold)

        if not offload_worthy:
            if not aliasing_ok:
                reasons.append("falling back to host execution")
            elif t_xfer >= t_cpu:
                reasons.append("data transfer would exceed CPU execution "
                               "time: no benefit to offloading")
            else:
                reasons.append("hotspot is memory bound: no benefit to "
                               "offloading")
            if profile.outer_parallel:
                reasons.append("parallel outer loop -> multi-thread CPU")
                return self._decision(name, self.OMP, paths, reasons)
            reasons.append("outer loop not parallel: flow terminates "
                           "without modifying the reference")
            return PSADecision(name, [], reasons)

        if profile.outer_parallel:
            reasons.append("outer hotspot loop is parallel")
            if profile.dependent_inner_loops:
                reasons.append("inner loops carry dependences")
                if profile.inner_fully_unrollable:
                    reasons.append(
                        f"dependent inner nest of {profile.inner_fixed_product}"
                        " iterations is fully unrollable -> CPU+FPGA "
                        "(pipelined, II=1)")
                    return self._decision(name, self.FPGA, paths, reasons)
                reasons.append("dependent inner loops cannot be fully "
                               "unrolled -> CPU+GPU")
                return self._decision(name, self.GPU, paths, reasons)
            reasons.append("no dependent inner loops: data-parallel "
                           "execution -> CPU+GPU")
            return self._decision(name, self.GPU, paths, reasons)

        reasons.append("outer hotspot loop is not parallel -> CPU+FPGA "
                       "(pipelining exploits intra-iteration parallelism)")
        return self._decision(name, self.FPGA, paths, reasons)

    def _decision(self, branch: str, path: str, paths: List[str],
                  reasons: List[str]) -> PSADecision:
        if path not in paths:
            raise KeyError(f"strategy chose {path!r} but branch {branch} "
                           f"only offers {paths}")
        return PSADecision(branch, [path], reasons)
