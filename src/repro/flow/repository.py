"""The repository of codified design-flow tasks (Fig. 4, left panel).

Every row of the paper's task table is one class here; the Fig. 4
classifications (A/T/CG/O) and dynamic markers are preserved.  Tasks
wrap the standalone meta-programs of :mod:`repro.analysis`,
:mod:`repro.transforms` and :mod:`repro.codegen`, binding them to the
shared :class:`~repro.flow.context.FlowContext`.
"""

from __future__ import annotations

from repro.analysis.data_movement import BufferTraffic, DataMovementInfo
from repro.analysis.dependence import analyze_dependences
from repro.analysis.hotspot import identify_hotspot_loops
from repro.analysis.intensity import analyze_intensity
from repro.analysis.pointer_alias import AliasInfo, AliasPair
from repro.analysis.trip_count import TripCountInfo, static_trip_count
from repro.analysis.common import loop_path
from repro.codegen.hip import generate_hip_design
from repro.codegen.oneapi import generate_oneapi_design
from repro.codegen.openmp import generate_openmp_design
from repro.flow.task import FlowError, Task, TaskKind
from repro.transforms.extraction import extract_hotspot
from repro.transforms.fpga_mem import zero_copy_data_transfer
from repro.transforms.gpu_mem import (
    employ_pinned_memory, employ_specialised_math,
    introduce_shared_mem_buffer,
)
from repro.transforms.openmp import insert_parallel_for
from repro.transforms.remove_array_dep import remove_array_plus_equals
from repro.transforms.sp_math import (
    cast_double_loads, demote_local_doubles, employ_sp_literals,
    employ_sp_math,
)
from repro.transforms.unroll import unroll_fixed_loops


# ======================================================================
# Target-independent tasks (T-INDEP)
# ======================================================================

class IdentifyHotspotLoops(Task):
    name = "Identify Hotspot Loops"
    kind = TaskKind.ANALYSIS
    dynamic = True

    def run(self, ctx) -> None:
        hotspots = identify_hotspot_loops(ctx.ast, ctx.workload)
        if not hotspots:
            raise FlowError("application has no outermost loops to time")
        ctx.facts["hotspots"] = hotspots
        top = hotspots[0]
        ctx.log(f"    hotspot: {top.path} "
                f"({top.fraction:.0%} of execution time)")


class HotspotLoopExtraction(Task):
    name = "Hotspot Loop Extraction"
    kind = TaskKind.TRANSFORM

    def __init__(self, kernel_name: str = "hotspot_kernel"):
        self.kernel_name = kernel_name

    def run(self, ctx) -> None:
        hotspots = ctx.facts.get("hotspots")
        if not hotspots:
            raise FlowError("run Identify Hotspot Loops first")
        result = extract_hotspot(ctx.ast, hotspots[0].path, self.kernel_name)
        ctx.facts["extraction"] = result
        ctx.invalidate_kernel_report()
        # snapshot the unoptimised hotspot: this is the Fig. 5 baseline
        ctx.facts["reference_profile"] = ctx.build_kernel_profile()
        ctx.log(f"    extracted {result.kernel_name}"
                f"({', '.join(n for n, _ in result.params)})")


class PointerAnalysis(Task):
    name = "Pointer Analysis"
    kind = TaskKind.ANALYSIS
    dynamic = True

    def run(self, ctx) -> None:
        report = ctx.kernel_report()
        kernel = ctx.kernel_name
        events = report.calls_of(kernel)
        conflicts = []
        seen = set()
        for call_index, event in enumerate(events):
            args = event.args
            for i in range(len(args)):
                for j in range(i + 1, len(args)):
                    name_a, id_a, off_a, ext_a = args[i]
                    name_b, id_b, off_b, ext_b = args[j]
                    if id_a != id_b:
                        continue
                    if max(off_a, off_b) < min(off_a + ext_a, off_b + ext_b):
                        key = (name_a, name_b)
                        if key not in seen:
                            seen.add(key)
                            conflicts.append(
                                AliasPair(name_a, name_b, call_index))
        info = AliasInfo(kernel, len(events), tuple(conflicts))
        ctx.facts["alias"] = info
        ctx.log(f"    {len(events)} kernel call(s); "
                + ("no pointer aliasing" if info.no_aliasing
                   else f"ALIASING: {conflicts}"))


class ArithmeticIntensityAnalysis(Task):
    name = "Arithmetic Intensity Analysis"
    kind = TaskKind.ANALYSIS

    def run(self, ctx) -> None:
        info = analyze_intensity(ctx.ast, ctx.kernel_name)
        ctx.facts["intensity"] = info
        ctx.log(f"    FLOPs/B = {info.flops_per_byte:.3f} "
                f"(SP fraction {info.sp_fraction:.0%})")


class DataInOutAnalysis(Task):
    name = "Data In/Out Analysis"
    kind = TaskKind.ANALYSIS
    dynamic = True

    def run(self, ctx) -> None:
        report = ctx.kernel_report()
        kernel = ctx.kernel_name
        records = report.arrays_touched_by(kernel)
        buffers = []
        for rec in records.values():
            if rec.is_input and rec.is_output:
                direction = "inout"
            elif rec.is_output:
                direction = "out"
            elif rec.is_input:
                direction = "in"
            else:
                continue
            buffers.append(BufferTraffic(rec.name, rec.nbytes, direction))
        buffers.sort(key=lambda b: b.name)
        info = DataMovementInfo(kernel, tuple(buffers),
                                len(report.calls_of(kernel)))
        ctx.facts["data_movement"] = info
        ctx.log(f"    in: {info.bytes_in} B, out: {info.bytes_out} B "
                f"({len(buffers)} buffers)")


class LoopDependenceAnalysis(Task):
    name = "Loop Dependence Analysis"
    kind = TaskKind.ANALYSIS

    def run(self, ctx) -> None:
        deps = analyze_dependences(ctx.ast, ctx.kernel_name)
        ctx.facts["dependences"] = deps
        parallel = sum(1 for d in deps.values() if d.is_parallel)
        ctx.log(f"    {len(deps)} loops: {parallel} parallel, "
                f"{len(deps) - parallel} with dependences")


class LoopTripCountAnalysis(Task):
    name = "Loop Trip-Count Analysis"
    kind = TaskKind.ANALYSIS
    dynamic = True

    def run(self, ctx) -> None:
        report = ctx.kernel_report()
        kernel = ctx.ast.function(ctx.kernel_name)
        infos = {}
        for loop in kernel.loops():
            path = loop_path(loop)
            profile = report.loop_profiles.get(loop.node_id)
            static = static_trip_count(loop)
            if profile is None or profile.entries == 0:
                infos[path] = TripCountInfo(path, 0, 0, 0, 0, 0.0,
                                            False, static)
            else:
                infos[path] = TripCountInfo(
                    path, profile.entries, profile.total_iterations,
                    profile.min_trips, profile.max_trips,
                    profile.avg_trips, profile.constant_trips, static)
        ctx.facts["trip_counts"] = infos
        ctx.log(f"    characterised {len(infos)} loops")


class RemoveArrayPlusEqualsDependency(Task):
    name = "Remove Array += Dependency"
    kind = TaskKind.TRANSFORM

    def run(self, ctx) -> None:
        introduced = remove_array_plus_equals(ctx.ast, ctx.kernel_name)
        if introduced:
            ctx.log(f"    scalarised {introduced} array accumulator(s); "
                    "re-running kernel characterisation")
            ctx.invalidate_kernel_report()
            ctx.facts.pop("kernel_profile", None)
            # refresh the facts downstream strategies consume
            ctx.facts["intensity"] = analyze_intensity(
                ctx.ast, ctx.kernel_name)
            ctx.facts["dependences"] = analyze_dependences(
                ctx.ast, ctx.kernel_name)
        else:
            ctx.log("    no removable array += accumulation found")


# ======================================================================
# Code generation (one per target branch)
# ======================================================================

class GenerateHIPDesign(Task):
    name = "Generate HIP Design"
    kind = TaskKind.CODEGEN
    scope = "GPU"

    def run(self, ctx) -> None:
        ctx.design = generate_hip_design(
            ctx.app.name, ctx.ast.clone(), ctx.facts["extraction"],
            ctx.facts.get("data_movement"), ctx.app.reference_loc)
        ctx.log("    generated HIP host/device management code")


class GenerateOneAPIDesign(Task):
    name = "Generate oneAPI Design"
    kind = TaskKind.CODEGEN
    scope = "FPGA"

    def run(self, ctx) -> None:
        ctx.design = generate_oneapi_design(
            ctx.app.name, ctx.ast.clone(), ctx.facts["extraction"],
            ctx.facts.get("data_movement"), ctx.app.reference_loc)
        ctx.log("    generated oneAPI queue/buffer management code")


class MultiThreadParallelLoops(Task):
    name = "Multi-Thread Parallel Loops"
    kind = TaskKind.TRANSFORM
    scope = "CPU-OMP"

    def run(self, ctx) -> None:
        design = generate_openmp_design(
            ctx.app.name, ctx.ast.clone(), ctx.facts["extraction"],
            ctx.facts.get("data_movement"), ctx.app.reference_loc)
        loops = insert_parallel_for(design.ast, design.kernel_name)
        ctx.design = design
        ctx.log(f"    annotated {len(loops)} parallel loop(s) with "
                "#pragma omp parallel for")


# ======================================================================
# Target-specific transforms
# ======================================================================

class _DesignTask(Task):
    """Base for tasks operating on the in-flight design."""

    def design(self, ctx):
        if ctx.design is None:
            raise FlowError(f"{self.name} needs a generated design")
        return ctx.design


class EmploySPMathFns(_DesignTask):
    name = "Employ SP Math Fns*"
    kind = TaskKind.TRANSFORM

    def __init__(self, scope: str):
        self.scope = scope

    def run(self, ctx) -> None:
        design = self.design(ctx)
        if not ctx.app.sp_tolerant:
            ctx.log("    skipped: application declares double-precision "
                    "requirements (the * in Fig. 4)")
            return
        count = employ_sp_math(design.ast, design.kernel_name)
        design.metadata["sp_math"] = True
        ctx.log(f"    rewrote {count} math call(s) to SP variants")


class EmploySPNumericLiterals(_DesignTask):
    name = "Employ SP Numeric Literals*"
    kind = TaskKind.TRANSFORM

    def __init__(self, scope: str):
        self.scope = scope

    def run(self, ctx) -> None:
        design = self.design(ctx)
        if not ctx.app.sp_tolerant:
            ctx.log("    skipped: application declares double-precision "
                    "requirements (the * in Fig. 4)")
            return
        literals = employ_sp_literals(design.ast, design.kernel_name)
        locals_demoted = demote_local_doubles(design.ast, design.kernel_name)
        casts = cast_double_loads(design.ast, design.kernel_name)
        design.metadata["sp_literals"] = True
        ctx.log(f"    suffixed {literals} literal(s), demoted "
                f"{locals_demoted} local double(s), cast {casts} "
                "buffer load(s) to float")


class UnrollFixedLoops(_DesignTask):
    name = "Unroll Fixed Loops"
    kind = TaskKind.TRANSFORM
    scope = "FPGA"

    def run(self, ctx) -> None:
        design = self.design(ctx)
        unrolled = unroll_fixed_loops(design.ast, design.kernel_name)
        ctx.log(f"    fully unrolled {len(unrolled)} fixed-bound "
                "inner loop(s)")


class EmployHIPPinnedMemory(_DesignTask):
    name = "Employ HIP Pinned Memory"
    kind = TaskKind.TRANSFORM
    scope = "GPU"

    def run(self, ctx) -> None:
        employ_pinned_memory(self.design(ctx))
        ctx.log("    host buffers page-locked for DMA transfers")


class IntroduceSharedMemBuf(_DesignTask):
    name = "Introduce Shared Mem Buf"
    kind = TaskKind.TRANSFORM
    scope = "GPU"

    def run(self, ctx) -> None:
        design = self.design(ctx)
        if introduce_shared_mem_buffer(design):
            ctx.log(f"    staging {design.metadata['shared_tile']} "
                    "through shared memory")
        else:
            ctx.log("    no redundantly-streamed operand: task is a no-op")


class EmploySpecialisedMathFns(_DesignTask):
    name = "Employ Specialised Math Fns"
    kind = TaskKind.TRANSFORM
    scope = "GPU"

    def run(self, ctx) -> None:
        design = self.design(ctx)
        count = employ_specialised_math(design)
        ctx.log(f"    rewrote {count} call(s) to device intrinsics")


class ZeroCopyDataTransfer(_DesignTask):
    name = "Zero-Copy Data Transfer"
    kind = TaskKind.TRANSFORM
    scope = "FPGA-S10"

    def run(self, ctx) -> None:
        zero_copy_data_transfer(self.design(ctx))
        ctx.log("    design rewired to USM zero-copy host memory")


# ======================================================================
# Device specialisation helper
# ======================================================================

class SpecialiseForDevice(Task):
    """Clone the in-flight design for one concrete device (branch B/C)."""

    kind = TaskKind.CODEGEN

    def __init__(self, device: str, label: str, scope: str):
        self.device = device
        self.label = label
        self.scope = scope
        self.name = f"Specialise for {label}"

    def run(self, ctx) -> None:
        if ctx.design is None:
            raise FlowError("device specialisation needs a design")
        design = ctx.design.clone()
        design.device = self.device
        design.metadata["device_label"] = self.label
        ctx.design = design
