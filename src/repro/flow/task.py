"""Design-flow task base classes.

The Fig. 4 repository classifies each codified task as Analysis (A),
Transform (T), Code-Generation (CG) or Optimisation (O), and marks the
tasks that require program execution as *dynamic*.  Tasks are
meta-programs: they receive the shared :class:`FlowContext` and operate
on its AST / current design / accrued facts.
"""

from __future__ import annotations

import enum
import time
from typing import Optional, TYPE_CHECKING

from repro import obs

if TYPE_CHECKING:
    from repro.flow.context import FlowContext
    from repro.flow.psa import PSADecision


class FlowError(Exception):
    """A design-flow could not proceed (bad mapping, missing facts...)."""


class FlowObserver:
    """Hook interface for flow instrumentation (telemetry, progress).

    An observer attached to a :class:`~repro.flow.context.FlowContext`
    receives one callback pair per executed task and one callback per
    branch decision.  The base class is a no-op so observers override
    only what they need; ``repro.service.telemetry.Tracer`` turns these
    callbacks into structured spans.
    """

    def on_task_start(self, task: "Task", ctx: "FlowContext") -> None:
        pass

    def on_task_end(self, task: "Task", ctx: "FlowContext",
                    wall_s: float, status: str = "ok",
                    error: Optional[BaseException] = None) -> None:
        pass

    def on_branch(self, decision: "PSADecision",
                  ctx: "FlowContext") -> None:
        pass


class TaskKind(enum.Enum):
    ANALYSIS = "A"
    TRANSFORM = "T"
    CODEGEN = "CG"
    OPTIMISATION = "O"


class Task:
    """One codified design-flow task.

    Subclasses set ``name``, ``kind``, ``scope`` (the Fig. 4 grouping:
    ``T-INDEP``, ``FPGA``, ``FPGA-S10``, ``GPU``, ``GPU-1080``,
    ``CPU-OMP``, ...) and ``dynamic`` (requires program execution), and
    implement :meth:`run`.
    """

    name: str = "task"
    kind: TaskKind = TaskKind.TRANSFORM
    scope: str = "T-INDEP"
    dynamic: bool = False

    def run(self, ctx: "FlowContext") -> None:
        raise NotImplementedError

    def __call__(self, ctx: "FlowContext") -> None:
        ctx.log(f"[{self.scope}] {self.name} ({self.kind.value}"
                f"{'*' if self.dynamic else ''})")
        ctx.notify_task_start(self)
        start = time.perf_counter()
        status = "ok"
        error: Optional[BaseException] = None
        with obs.span(self.name, kind=self.kind.value, scope=self.scope,
                      dynamic=self.dynamic, app=ctx.app.name):
            try:
                self.run(ctx)
            except Exception as exc:
                status = "error"
                error = exc
                raise
            finally:
                # inside the span so observers can link to it
                ctx.notify_task_end(self, time.perf_counter() - start,
                                    status, error)

    def __repr__(self):
        return f"<Task {self.name} kind={self.kind.value} scope={self.scope}>"
