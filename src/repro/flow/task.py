"""Design-flow task base classes.

The Fig. 4 repository classifies each codified task as Analysis (A),
Transform (T), Code-Generation (CG) or Optimisation (O), and marks the
tasks that require program execution as *dynamic*.  Tasks are
meta-programs: they receive the shared :class:`FlowContext` and operate
on its AST / current design / accrued facts.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.flow.context import FlowContext


class FlowError(Exception):
    """A design-flow could not proceed (bad mapping, missing facts...)."""


class TaskKind(enum.Enum):
    ANALYSIS = "A"
    TRANSFORM = "T"
    CODEGEN = "CG"
    OPTIMISATION = "O"


class Task:
    """One codified design-flow task.

    Subclasses set ``name``, ``kind``, ``scope`` (the Fig. 4 grouping:
    ``T-INDEP``, ``FPGA``, ``FPGA-S10``, ``GPU``, ``GPU-1080``,
    ``CPU-OMP``, ...) and ``dynamic`` (requires program execution), and
    implement :meth:`run`.
    """

    name: str = "task"
    kind: TaskKind = TaskKind.TRANSFORM
    scope: str = "T-INDEP"
    dynamic: bool = False

    def run(self, ctx: "FlowContext") -> None:
        raise NotImplementedError

    def __call__(self, ctx: "FlowContext") -> None:
        ctx.log(f"[{self.scope}] {self.name} ({self.kind.value}"
                f"{'*' if self.dynamic else ''})")
        self.run(ctx)

    def __repr__(self):
        return f"<Task {self.name} kind={self.kind.value} scope={self.scope}>"
