"""JSON serialization of flow results -- and back.

Dashboards, CI checks, the runtime mapping services of §IV-D and the
``repro.service`` result cache consume flow outcomes programmatically;
this module renders a :class:`FlowResult` (designs, metadata, PSA
decisions, analysis summary) as plain JSON-compatible data, and
reconstructs read-side equivalents (:class:`FlowResultRecord`,
:class:`DesignRecord`) from that data.

Only data flows out -- sources are included as text, HLS reports as
dictionaries; nothing here is needed to re-run a flow.  The records
returned by :func:`result_from_dict` expose the same *read* API the
evaluation harness uses (``design()``, ``auto_selected``,
``selected_target``, ``speedup``, ``loc_delta_pct``, ...), so a result
loaded from the service's disk cache is a drop-in for a live run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.codegen.design import Design
from repro.flow.engine import FlowResult
from repro.flow.psa import PSADecision
from repro.toolchains.reports import HLSReport


def _jsonable(value: Any) -> Any:
    if isinstance(value, HLSReport):
        return {
            "device": value.device,
            "alm_utilization": value.alm_utilization,
            "dsp_utilization": value.dsp_utilization,
            "ii": value.ii,
            "fmax_mhz": value.fmax_mhz,
            "unroll_factor": value.unroll_factor,
            "variable_inner_loop": value.variable_inner_loop,
            "fitted": value.fitted,
        }
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def design_to_dict(design: "DesignLike", include_source: bool = False
                   ) -> Dict[str, Any]:
    if isinstance(design, DesignRecord):
        return design.to_dict(include_source)
    out: Dict[str, Any] = {
        "label": design.label,
        "app": design.app_name,
        "kind": design.kind,
        "device": design.device,
        "kernel": design.kernel_name,
        "synthesizable": design.synthesizable,
        "failure_reason": design.failure_reason,
        "predicted_time_s": design.predicted_time_s,
        "speedup": design.speedup,
        "loc": design.loc,
        "reference_loc": design.reference_loc,
        "loc_delta_pct": design.loc_delta_pct,
        "metadata": _jsonable(design.metadata),
        "buffers": [
            {"name": b.name, "nbytes": b.nbytes, "direction": b.direction}
            for b in design.buffers],
    }
    if include_source:
        out["source"] = design.render()
    return out


def decision_to_dict(decision: PSADecision) -> Dict[str, Any]:
    return {"branch": decision.branch,
            "selected": list(decision.selected),
            "reasons": list(decision.reasons)}


def result_to_dict(result: "ResultLike",
                   include_sources: bool = False) -> Dict[str, Any]:
    """JSON-compatible view of a complete flow run."""
    if isinstance(result, FlowResultRecord):
        return result.to_dict(include_sources)
    decisions = {key: decision_to_dict(value)
                 for key, value in result.facts.items()
                 if isinstance(value, PSADecision)}
    profile = result.facts.get("kernel_profile")
    profile_dict: Optional[Dict[str, Any]] = None
    if profile is not None:
        profile_dict = {
            "flops": profile.total_flops,
            "mem_bytes": profile.mem_bytes,
            "outer_iterations": profile.outer_iterations,
            "bytes_in": profile.bytes_in,
            "bytes_out": profile.bytes_out,
            "sp_fraction": profile.sp_fraction,
            "gather_fraction": profile.gather_fraction,
            "outer_parallel": profile.outer_parallel,
            "dependent_inner_loops": profile.dependent_inner_loops,
            "inner_fully_unrollable": profile.inner_fully_unrollable,
        }
    return {
        "app": result.app.name,
        "mode": result.mode,
        "selected_target": result.selected_target,
        "reference_time_s": result.reference_time_s,
        "designs": [design_to_dict(d, include_sources)
                    for d in result.designs],
        "decisions": decisions,
        "kernel_profile": profile_dict,
        "trace": list(result.trace),
    }


def dump_result(result: FlowResult, path: str,
                include_sources: bool = False) -> None:
    """Write the flow result to ``path`` as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result_to_dict(result, include_sources), fh, indent=2)


def dumps_result(result: "ResultLike",
                 include_sources: bool = False) -> str:
    return json.dumps(result_to_dict(result, include_sources), indent=2)


# ----------------------------------------------------------------------
# Deserialization: read-side records reconstructed from the JSON form
# ----------------------------------------------------------------------

@dataclass
class BufferRecord:
    """Deserialized view of one kernel buffer."""

    name: str
    nbytes: float
    direction: str


@dataclass
class DesignRecord:
    """Read-side equivalent of :class:`~repro.codegen.design.Design`.

    Carries everything :func:`design_to_dict` serializes.  LOC figures
    are stored (not recomputed) because the AST is not round-tripped;
    ``render()`` returns the stored source when the result was
    serialized with ``include_sources=True``.
    """

    app_name: str
    kind: str
    kernel_name: str
    device: Optional[str]
    synthesizable: bool
    failure_reason: Optional[str]
    predicted_time_s: Optional[float]
    speedup: Optional[float]
    loc: int
    reference_loc: int
    loc_delta_pct: float
    metadata: Dict[str, Any] = field(default_factory=dict)
    buffers: Tuple[BufferRecord, ...] = ()
    source: Optional[str] = None

    @property
    def label(self) -> str:
        device = self.metadata.get("device_label") or self.device or "generic"
        return f"{self.app_name}/{self.kind}/{device}"

    @property
    def loc_delta(self) -> int:
        return self.loc - self.reference_loc

    def buffer(self, name: str) -> BufferRecord:
        for buf in self.buffers:
            if buf.name == name:
                return buf
        raise KeyError(f"design has no buffer {name!r}")

    def render(self) -> str:
        if self.source is None:
            raise ValueError(
                f"design {self.label} was serialized without sources; "
                f"re-run with include_sources=True to keep them")
        return self.source

    def to_dict(self, include_source: bool = False) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "label": self.label,
            "app": self.app_name,
            "kind": self.kind,
            "device": self.device,
            "kernel": self.kernel_name,
            "synthesizable": self.synthesizable,
            "failure_reason": self.failure_reason,
            "predicted_time_s": self.predicted_time_s,
            "speedup": self.speedup,
            "loc": self.loc,
            "reference_loc": self.reference_loc,
            "loc_delta_pct": self.loc_delta_pct,
            "metadata": dict(self.metadata),
            "buffers": [
                {"name": b.name, "nbytes": b.nbytes,
                 "direction": b.direction}
                for b in self.buffers],
        }
        if include_source and self.source is not None:
            out["source"] = self.source
        return out

    def __repr__(self):
        return (f"<DesignRecord {self.label} loc={self.loc} "
                f"speedup={self.speedup}>")


def design_from_dict(data: Dict[str, Any]) -> DesignRecord:
    return DesignRecord(
        app_name=data["app"],
        kind=data["kind"],
        kernel_name=data["kernel"],
        device=data.get("device"),
        synthesizable=data["synthesizable"],
        failure_reason=data.get("failure_reason"),
        predicted_time_s=data.get("predicted_time_s"),
        speedup=data.get("speedup"),
        loc=data["loc"],
        reference_loc=data["reference_loc"],
        loc_delta_pct=data["loc_delta_pct"],
        metadata=dict(data.get("metadata") or {}),
        buffers=tuple(BufferRecord(b["name"], b["nbytes"], b["direction"])
                      for b in data.get("buffers") or ()),
        source=data.get("source"),
    )


def decision_from_dict(data: Dict[str, Any]) -> PSADecision:
    return PSADecision(branch=data["branch"],
                       selected=list(data["selected"]),
                       reasons=list(data["reasons"]))


@dataclass
class FlowResultRecord:
    """Read-side equivalent of :class:`~repro.flow.engine.FlowResult`.

    ``facts`` holds the reconstructed :class:`PSADecision` objects under
    their ``psa:<branch>`` keys plus the kernel-profile summary as a
    plain dict -- enough for every evaluation-harness consumer.
    """

    app_name: str
    mode: str
    designs: List[DesignRecord]
    trace: List[str]
    decisions: Dict[str, PSADecision]
    kernel_profile: Optional[Dict[str, Any]]
    reference_time_s: float

    @property
    def app(self):
        """The live AppSpec from the registry (apps are code, not data)."""
        from repro.apps.registry import get_app

        return get_app(self.app_name)

    @property
    def facts(self) -> Dict[str, Any]:
        facts: Dict[str, Any] = dict(self.decisions)
        if self.kernel_profile is not None:
            facts["kernel_profile_summary"] = self.kernel_profile
        return facts

    def design(self, device_label: str) -> Optional[DesignRecord]:
        for design in self.designs:
            if design.metadata.get("device_label") == device_label:
                return design
        return None

    @property
    def synthesizable_designs(self) -> List[DesignRecord]:
        return [d for d in self.designs if d.synthesizable
                and d.speedup is not None]

    @property
    def auto_selected(self) -> Optional[DesignRecord]:
        candidates = self.synthesizable_designs
        if not candidates:
            return None
        return max(candidates, key=lambda d: d.speedup)

    @property
    def selected_target(self) -> Optional[str]:
        decision = self.decisions.get("psa:A")
        if decision is None or not decision.selected:
            return None
        return decision.selected[0]

    def explain(self) -> str:
        return "\n".join(self.trace)

    def to_dict(self, include_sources: bool = False) -> Dict[str, Any]:
        return {
            "app": self.app_name,
            "mode": self.mode,
            "selected_target": self.selected_target,
            "reference_time_s": self.reference_time_s,
            "designs": [d.to_dict(include_sources) for d in self.designs],
            "decisions": {key: decision_to_dict(value)
                          for key, value in self.decisions.items()},
            "kernel_profile": self.kernel_profile,
            "trace": list(self.trace),
        }


def result_from_dict(data: Dict[str, Any]) -> FlowResultRecord:
    """Rebuild a read-side flow result from :func:`result_to_dict` data."""
    return FlowResultRecord(
        app_name=data["app"],
        mode=data["mode"],
        designs=[design_from_dict(d) for d in data.get("designs") or ()],
        trace=list(data.get("trace") or ()),
        decisions={key: decision_from_dict(value)
                   for key, value in (data.get("decisions") or {}).items()},
        kernel_profile=data.get("kernel_profile"),
        reference_time_s=data["reference_time_s"],
    )


def load_result(path: str) -> FlowResultRecord:
    """Read a result previously written with :func:`dump_result`."""
    with open(path, "r", encoding="utf-8") as fh:
        return result_from_dict(json.load(fh))


#: anything serializable as a flow result
ResultLike = Any
DesignLike = Any
