"""JSON serialization of flow results.

Dashboards, CI checks and the runtime mapping services of §IV-D consume
flow outcomes programmatically; this module renders a
:class:`FlowResult` (designs, metadata, PSA decisions, analysis
summary) as plain JSON-compatible data and back to disk.

Only data flows out -- sources are included as text, HLS reports as
dictionaries; nothing here is needed to re-run a flow.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.codegen.design import Design
from repro.flow.engine import FlowResult
from repro.flow.psa import PSADecision
from repro.toolchains.reports import HLSReport


def _jsonable(value: Any) -> Any:
    if isinstance(value, HLSReport):
        return {
            "device": value.device,
            "alm_utilization": value.alm_utilization,
            "dsp_utilization": value.dsp_utilization,
            "ii": value.ii,
            "fmax_mhz": value.fmax_mhz,
            "unroll_factor": value.unroll_factor,
            "variable_inner_loop": value.variable_inner_loop,
            "fitted": value.fitted,
        }
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def design_to_dict(design: Design, include_source: bool = False
                   ) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "label": design.label,
        "app": design.app_name,
        "kind": design.kind,
        "device": design.device,
        "kernel": design.kernel_name,
        "synthesizable": design.synthesizable,
        "failure_reason": design.failure_reason,
        "predicted_time_s": design.predicted_time_s,
        "speedup": design.speedup,
        "loc": design.loc,
        "reference_loc": design.reference_loc,
        "loc_delta_pct": design.loc_delta_pct,
        "metadata": _jsonable(design.metadata),
        "buffers": [
            {"name": b.name, "nbytes": b.nbytes, "direction": b.direction}
            for b in design.buffers],
    }
    if include_source:
        out["source"] = design.render()
    return out


def decision_to_dict(decision: PSADecision) -> Dict[str, Any]:
    return {"branch": decision.branch,
            "selected": list(decision.selected),
            "reasons": list(decision.reasons)}


def result_to_dict(result: FlowResult,
                   include_sources: bool = False) -> Dict[str, Any]:
    """JSON-compatible view of a complete flow run."""
    decisions = {key: decision_to_dict(value)
                 for key, value in result.facts.items()
                 if isinstance(value, PSADecision)}
    profile = result.facts.get("kernel_profile")
    profile_dict: Optional[Dict[str, Any]] = None
    if profile is not None:
        profile_dict = {
            "flops": profile.total_flops,
            "mem_bytes": profile.mem_bytes,
            "outer_iterations": profile.outer_iterations,
            "bytes_in": profile.bytes_in,
            "bytes_out": profile.bytes_out,
            "sp_fraction": profile.sp_fraction,
            "gather_fraction": profile.gather_fraction,
            "outer_parallel": profile.outer_parallel,
            "dependent_inner_loops": profile.dependent_inner_loops,
            "inner_fully_unrollable": profile.inner_fully_unrollable,
        }
    return {
        "app": result.app.name,
        "mode": result.mode,
        "selected_target": result.selected_target,
        "reference_time_s": result.reference_time_s,
        "designs": [design_to_dict(d, include_sources)
                    for d in result.designs],
        "decisions": decisions,
        "kernel_profile": profile_dict,
        "trace": list(result.trace),
    }


def dump_result(result: FlowResult, path: str,
                include_sources: bool = False) -> None:
    """Write the flow result to ``path`` as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result_to_dict(result, include_sources), fh, indent=2)


def dumps_result(result: FlowResult,
                 include_sources: bool = False) -> str:
    return json.dumps(result_to_dict(result, include_sources), indent=2)
