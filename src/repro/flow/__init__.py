"""PSA-flows: the paper's primary contribution.

Programmatic, customizable, reusable design-flows built from codified
tasks (:mod:`repository`), composed into graphs with branch points
(:mod:`graph`), steered by Path Selection Automation strategies
(:mod:`psa`) with analytical cost evaluation (:mod:`cost`) and
design-space exploration engines (:mod:`dse`), and executed by the
:class:`~repro.flow.engine.FlowEngine` over a shared analysis context
(:mod:`context`).

``FlowEngine().run(app, mode="informed")`` reproduces the paper's
Fig. 4 flow end to end: target-independent analysis, the Fig. 3 branch
decision at A, target- and device-specific specialisation at B/C, and
one evaluated Design per generated implementation.
"""

from repro.flow.task import Task, TaskKind, FlowError
from repro.flow.context import FlowContext
from repro.flow.graph import BranchPoint, FlowNode, Sequence, TaskNode
from repro.flow.psa import (
    InformedTargetSelection, PSADecision, PSAStrategy, SelectAll,
    SelectNamed,
)
from repro.flow.cost import BudgetedStrategy, CloudPriceTable, CostEvaluator
from repro.flow.dse import (
    BlocksizeDSE, OmpThreadsDSE, UnrollUntilOvermapDSE,
)
from repro.flow.ml_psa import (
    DecisionTree, MLTargetSelection, extract_features, train_from_results,
)
from repro.flow.engine import FlowEngine, FlowResult, build_default_flow
from repro.flow.serialize import dump_result, dumps_result, result_to_dict

__all__ = [
    "Task", "TaskKind", "FlowError",
    "FlowContext",
    "FlowNode", "TaskNode", "Sequence", "BranchPoint",
    "PSAStrategy", "PSADecision", "InformedTargetSelection", "SelectAll",
    "SelectNamed",
    "CostEvaluator", "CloudPriceTable", "BudgetedStrategy",
    "UnrollUntilOvermapDSE", "BlocksizeDSE", "OmpThreadsDSE",
    "FlowEngine", "FlowResult", "build_default_flow",
    "DecisionTree", "MLTargetSelection", "extract_features",
    "train_from_results",
    "result_to_dict", "dump_result", "dumps_result",
]
