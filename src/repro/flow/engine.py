"""FlowEngine: builds and executes the paper's Fig. 4 PSA-flow.

The default flow is the implemented PSA-flow of §III:

- target-independent tasks (partitioning + analyses + Remove Array +=);
- branch point **A** over {gpu, fpga, omp} -- Fig. 3 strategy in
  *informed* mode, select-all in *uninformed* mode;
- target-specific tasks per branch (code generation + optimisations);
- device branch points **B** (GTX 1080 Ti / RTX 2080 Ti) and **C**
  (Arria10 / Stratix10), both select-all ("the current implementation
  automatically selects both paths at B and C");
- device-specific DSE and a finalisation step that evaluates each
  design on its platform model and records predicted time + speedup
  against the single-thread reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.apps.base import AppSpec
from repro.codegen.design import Design
from repro.flow.context import FlowContext
from repro.flow.dse import BlocksizeDSE, OmpThreadsDSE, UnrollUntilOvermapDSE
from repro.flow.graph import BranchPoint, FlowNode, Sequence
from repro.flow.psa import InformedTargetSelection, PSAStrategy, SelectAll
from repro.flow.repository import (
    ArithmeticIntensityAnalysis, DataInOutAnalysis, EmployHIPPinnedMemory,
    EmploySPMathFns, EmploySPNumericLiterals, EmploySpecialisedMathFns,
    GenerateHIPDesign, GenerateOneAPIDesign, HotspotLoopExtraction,
    IdentifyHotspotLoops, IntroduceSharedMemBuf, LoopDependenceAnalysis,
    LoopTripCountAnalysis, MultiThreadParallelLoops, PointerAnalysis,
    RemoveArrayPlusEqualsDependency, SpecialiseForDevice, UnrollFixedLoops,
    ZeroCopyDataTransfer,
)
from repro.flow.task import FlowError, FlowObserver, Task, TaskKind
from repro.lang.interpreter import Workload
from repro.platforms.cpu import CPUModel
from repro.platforms.fpga import FPGADesignPoint, FPGAModel
from repro.platforms.gpu import GPUDesignPoint, GPUModel
from repro.platforms.registry import get_platform


class FinalizeDesign(Task):
    """Evaluate the in-flight design on its platform model and record it."""

    kind = TaskKind.ANALYSIS
    name = "Finalize Design"

    def __init__(self, scope: str):
        self.scope = scope

    # -- per-target evaluation -------------------------------------------
    def _evaluate(self, ctx: FlowContext, design: Design) -> float:
        profile = ctx.profile_for(design)
        if design.kind == "cpu-omp":
            model: CPUModel = get_platform(design.device or "epyc7543")
            threads = design.metadata.get("num_threads",
                                          model.spec.cores)
            return model.omp_time(profile, threads)
        if design.kind == "gpu-hip":
            model_gpu: GPUModel = get_platform(design.device)
            point = GPUDesignPoint(
                blocksize=design.metadata.get("blocksize", 256),
                registers_per_thread=design.metadata.get(
                    "registers_per_thread", 32),
                shared_mem_per_block=design.metadata.get("shared_bytes", 0),
                pinned_memory=design.metadata.get("pinned_memory", False),
                uses_shared_buffering=design.metadata.get(
                    "shared_buffering", False),
                uses_intrinsics=design.metadata.get("intrinsics", False),
                spilled=design.metadata.get("register_spill", False),
            )
            return model_gpu.design_time(profile, point)
        if design.kind == "fpga-oneapi":
            model_fpga: FPGAModel = get_platform(design.device)
            report = design.metadata.get("hls_report")
            variable_trips = 0.0
            if report is not None and report.variable_inner_loop:
                variable_trips = self._variable_inner_trips(ctx)
            point = FPGADesignPoint(
                unroll_factor=design.metadata.get("unroll_factor", 1),
                ii=report.ii if report is not None else 1.0,
                variable_inner_trips=variable_trips,
                zero_copy=design.metadata.get("zero_copy", False),
            )
            return model_fpga.design_time(profile, point)
        raise FlowError(f"cannot evaluate design kind {design.kind!r}")

    def _variable_inner_trips(self, ctx: FlowContext) -> float:
        trips = ctx.facts.get("trip_counts", {})
        kernel = ctx.kernel_name
        values = [info.avg_trips for path, info in trips.items()
                  if path.fn_name == kernel and info.static_trips is None
                  and path.index > 0]
        return max(values) if values else 0.0

    def run(self, ctx: FlowContext) -> None:
        design = ctx.design
        if design is None:
            raise FlowError("no design to finalise")
        if design.synthesizable:
            time = self._evaluate(ctx, design)
            design.predicted_time_s = time
            design.speedup = ctx.reference_time() / time if time > 0 else 0.0
            ctx.log(f"    {design.label}: {time * 1e3:.3f} ms "
                    f"({design.speedup:.1f}x vs 1-thread CPU), "
                    f"LOC +{design.loc_delta_pct:.0f}%")
        else:
            ctx.log(f"    {design.label}: NOT SYNTHESIZABLE "
                    f"({design.failure_reason})")
        ctx.designs.append(design)


@dataclass
class FlowResult:
    """Everything one PSA-flow run produced."""

    app: AppSpec
    mode: str
    designs: List[Design]
    trace: List[str]
    facts: Dict
    reference_time_s: float

    def design(self, device_label: str) -> Optional[Design]:
        for design in self.designs:
            if design.metadata.get("device_label") == device_label:
                return design
        return None

    @property
    def synthesizable_designs(self) -> List[Design]:
        return [d for d in self.designs if d.synthesizable
                and d.speedup is not None]

    @property
    def auto_selected(self) -> Optional[Design]:
        """Fastest generated design -- the paper's 'Auto-Selected' bar.

        In informed mode this is the fastest of the (1 or 2) designs the
        Fig. 3 strategy produced.
        """
        candidates = self.synthesizable_designs
        if not candidates:
            return None
        return max(candidates, key=lambda d: d.speedup)

    @property
    def selected_target(self) -> Optional[str]:
        decision = self.facts.get("psa:A")
        if decision is None or not decision.selected:
            return None
        return decision.selected[0]

    def explain(self) -> str:
        return "\n".join(self.trace)


def build_default_flow(strategy_a: PSAStrategy) -> FlowNode:
    """The Fig. 4 PSA-flow with the given strategy at branch point A."""
    gpu_path = Sequence(
        GenerateHIPDesign(),
        EmployHIPPinnedMemory(),
        EmploySPMathFns("GPU"),
        EmploySPNumericLiterals("GPU"),
        IntroduceSharedMemBuf(),
        EmploySpecialisedMathFns(),
        BranchPoint("B", {
            "gtx1080ti": Sequence(
                SpecialiseForDevice("gtx1080ti", "hip-1080ti", "GPU-1080"),
                BlocksizeDSE("gtx1080ti"),
                FinalizeDesign("GPU-1080"),
            ),
            "rtx2080ti": Sequence(
                SpecialiseForDevice("rtx2080ti", "hip-2080ti", "GPU-2080"),
                BlocksizeDSE("rtx2080ti"),
                FinalizeDesign("GPU-2080"),
            ),
        }),
    )
    fpga_path = Sequence(
        GenerateOneAPIDesign(),
        UnrollFixedLoops(),
        EmploySPMathFns("FPGA"),
        EmploySPNumericLiterals("FPGA"),
        BranchPoint("C", {
            "arria10": Sequence(
                SpecialiseForDevice("arria10", "oneapi-a10", "FPGA-A10"),
                UnrollUntilOvermapDSE("arria10"),
                FinalizeDesign("FPGA-A10"),
            ),
            "stratix10": Sequence(
                SpecialiseForDevice("stratix10", "oneapi-s10", "FPGA-S10"),
                ZeroCopyDataTransfer(),
                UnrollUntilOvermapDSE("stratix10"),
                FinalizeDesign("FPGA-S10"),
            ),
        }),
    )
    omp_path = Sequence(
        MultiThreadParallelLoops(),
        OmpThreadsDSE(),
        FinalizeDesign("CPU-OMP"),
    )
    return Sequence(
        IdentifyHotspotLoops(),
        HotspotLoopExtraction(),
        PointerAnalysis(),
        ArithmeticIntensityAnalysis(),
        DataInOutAnalysis(),
        LoopDependenceAnalysis(),
        LoopTripCountAnalysis(),
        RemoveArrayPlusEqualsDependency(),
        BranchPoint("A", {
            "gpu": gpu_path,
            "fpga": fpga_path,
            "omp": omp_path,
        }, strategy=strategy_a),
    )


class FlowEngine:
    """Runs PSA-flows over applications.

    ``mode``:

    - ``"informed"`` -- the Fig. 3 strategy decides branch point A;
    - ``"uninformed"`` -- branch point A selects all paths, generating
      all five designs (§IV-B: "modify branch point A to automatically
      select all paths").
    """

    def __init__(self, intensity_threshold: float = 0.25,
                 strategy_a: Optional[PSAStrategy] = None):
        self.intensity_threshold = intensity_threshold
        self._strategy_override = strategy_a

    def strategy_for(self, mode: str) -> PSAStrategy:
        if self._strategy_override is not None:
            return self._strategy_override
        if mode == "informed":
            return InformedTargetSelection(self.intensity_threshold)
        if mode == "uninformed":
            return SelectAll()
        raise ValueError(f"unknown mode {mode!r}")

    def run(self, app: AppSpec, mode: str = "informed",
            workload: Optional[Workload] = None,
            scale: float = 1.0,
            observer: Optional["FlowObserver"] = None) -> FlowResult:
        with obs.span(f"flow {app.name}/{mode}", app=app.name,
                      mode=mode, scale=scale):
            return self._run(app, mode, workload, scale, observer)

    def _run(self, app: AppSpec, mode: str,
             workload: Optional[Workload], scale: float,
             observer: Optional["FlowObserver"]) -> FlowResult:
        ctx = FlowContext(app, workload=workload, scale=scale,
                          observer=observer)
        ctx.log(f"=== PSA-flow for {app.display_name} (mode={mode}) ===")
        flow = build_default_flow(self.strategy_for(mode))
        flow.execute(ctx)
        return FlowResult(
            app=app,
            mode=mode,
            designs=ctx.designs,
            trace=ctx.trace,
            facts=ctx.facts,
            reference_time_s=ctx.reference_time(),
        )
