"""Batched DSE execution: design spaces lowered to tensors.

The point-at-a-time DSE tasks in :mod:`repro.flow.dse` clone, compile
and score one candidate per iteration.  This module lowers each task's
whole candidate axis through :mod:`repro.lang.batch` instead -- one
:class:`~repro.lang.batch.ParamGrid` spanning the space, one
:class:`~repro.lang.batch.BatchPlan` partitioned into the affine core
(FPGA resource polynomials), vectorized model evaluations (GPU / CPU
rooflines) and a non-affine residue (per-point extraction closures) --
and hands back per-point values that are **element-wise bit-identical**
to what the scalar loops compute.  ``REPRO_DSE=point`` keeps the
original loops as the fidelity fallback; the differential suite in
``tests/flow/test_dse_batch.py`` pins the equivalence for every app and
device, including the overmap and unsynthesisable edge cases.

Early-exit predicates become masked reductions: the Fig. 2 "stop at the
first overmapping factor" break is ``SweepResult.first_true`` over the
overmap mask, and "first strict minimum" selections are first-
occurrence ``argmin`` -- both defined to match the scalar loops' tie
behaviour exactly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.config import DSE_MODES
from repro.lang.batch import BatchPlan, ParamGrid

#: per-point evaluations by lowering mode and DSE family -- the
#: batched/point comparability counter of the observability layer
POINTS_TOTAL = obs.REGISTRY.counter(
    "repro_dse_points_total",
    "design points evaluated by DSE sweeps, by lowering mode",
    ("mode", "dse"))

#: candidate-axis extent lowered per batched sweep
BATCH_SIZE = obs.REGISTRY.histogram(
    "repro_dse_batch_size",
    "candidate-axis sizes lowered per batched DSE sweep",
    ("dse",),
    buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
             512.0, 1024.0))


def dse_mode() -> str:
    """The DSE lowering ``$REPRO_DSE`` selects (default ``batched``).

    Read lazily at sweep time, like the execution-engine knobs, so pool
    workers and per-job overrides (``FlowJob.dse``) take effect without
    re-importing anything.  Unknown values run the default lowering.
    """
    raw = (os.environ.get("REPRO_DSE") or "").strip().lower()
    return raw if raw in DSE_MODES else "batched"


def record_sweep(span, mode: str, dse: str, points: int) -> None:
    """Count a finished sweep in the metrics registry and its span."""
    if points > 0:
        POINTS_TOTAL.inc(points, mode=mode, dse=dse)
    if mode == "batched":
        BATCH_SIZE.observe(float(points), dse=dse)
    span.set(points=points)


# ---------------------------------------------------------------------
# Deterministic selection helpers (shared by both lowerings)
# ---------------------------------------------------------------------
def select_blocksize(candidates: Sequence[Tuple[float, int, float]]
                     ) -> Tuple[float, int, float]:
    """Pick from ``(time, blocksize, occupancy)`` triples.

    "Minimise execution time and maximise occupancy": among launch
    configurations within 1% of the fastest, prefer the highest
    occupancy, then the largest block.  Blocksizes are unique, so the
    key is total and the choice is invariant under any reordering of
    ``candidates`` -- pinned by ``test_blocksize_tiebreak_order_
    invariant``.
    """
    best_time = min(time for time, _, _ in candidates)
    near_best = [c for c in candidates if c[0] <= best_time * 1.01]
    return max(near_best, key=lambda c: (c[2], c[1]))


def first_min_index(times: Sequence[float]) -> int:
    """Index of the first strict minimum -- the scalar loops'
    ``if time < best_time`` rule, and numpy's ``argmin`` tie rule."""
    best = 0
    for i in range(1, len(times)):
        if times[i] < times[best]:
            best = i
    return best


# ---------------------------------------------------------------------
# Unroll-factor axis (Fig. 2, FPGA)
# ---------------------------------------------------------------------
@dataclass
class UnrollSweepOutcome:
    """What the factor-axis reduction decided.

    ``points`` lists ``(factor, alm_utilization, utilization,
    overmapped)`` for exactly the factors the point-at-a-time loop
    would have evaluated, in its order; ``stop`` is why it ended
    (``overmap`` | ``cap`` | ``ineffective``).
    """

    best_factor: int
    stop: str
    points: List[Tuple[int, float, float, bool]]


#: HLSReport.fitted's utilisation ceiling (reports.py)
_FIT_LIMIT = 0.90


def unroll_sweep(toolchain, ast, kernel: str, device: str,
                 factors: Sequence[int],
                 space_key: Optional[str] = None) -> UnrollSweepOutcome:
    """Lower the whole unroll-factor axis to one tensor evaluation.

    Two resource walks fit the exact affine polynomial
    (``DpcppToolchain.sweep_coefficients``); the factor axis then
    evaluates through the :class:`BatchPlan` affine core, and the
    Fig. 2 early exit becomes a ``first_true`` masked reduction over
    the overmap mask.  Utilisations come out bit-identical to per-
    factor partial compiles because every charge is an exact multiple
    of 0.5 in float64 and the division order mirrors the scalar
    report construction.
    """
    import numpy as np

    spec = toolchain.DEVICES[device]
    coeffs = toolchain.sweep_coefficients(ast, kernel)

    grid = ParamGrid(factor=tuple(factors))
    plan = BatchPlan(grid, space_key=space_key or grid.space_hash(
        extra=f"unroll:{device}"))
    plan.affine("alms", coeffs.alm_const, factor=coeffs.alm_slope)
    plan.affine("dsps", coeffs.dsp_const, factor=coeffs.dsp_slope)
    result = plan.evaluate()

    # mirror partial_compile's report arithmetic: one infra add, one
    # capacity division each -- single rounding, identical bits
    infra = spec.alms * spec.infra_alm_fraction
    alm_util = (infra + result.tensor("alms")) / spec.alms
    dsp_util = result.tensor("dsps") / spec.dsps
    util = np.maximum(alm_util, dsp_util)
    overmapped = ~(util <= _FIT_LIMIT)
    result.set("alm_util", alm_util)
    result.set("util", util)
    result.set("overmapped", overmapped)

    def point(i: int) -> Tuple[int, float, float, bool]:
        return (int(factors[i]), float(alm_util[i]), float(util[i]),
                bool(overmapped[i]))

    if not coeffs.effective:
        # the pragma is discounted (variable-bound inner loop / no
        # outer loop): the scalar loop evaluates the first factor,
        # sees report.unroll_factor < factor, and keeps factor 1
        return UnrollSweepOutcome(1, "ineffective", [point(0)])

    first = result.first_true(overmapped)
    if first is None:
        return UnrollSweepOutcome(
            int(factors[-1]), "cap",
            [point(i) for i in range(len(factors))])
    k = first[0]
    best = int(factors[k - 1]) if k > 0 else 1
    return UnrollSweepOutcome(
        best, "overmap", [point(i) for i in range(k + 1)])


# ---------------------------------------------------------------------
# Blocksize axis (GPU)
# ---------------------------------------------------------------------
def blocksize_sweep(model, profile, point, candidates: Sequence[int],
                    space_key: Optional[str] = None):
    """Lower the blocksize axis: one vectorized roofline evaluation.

    Returns ``(triples, limited_by)``: per-candidate ``(time,
    blocksize, occupancy)`` in candidate order, plus the per-candidate
    occupancy-limiter names.  Times and occupancies ride the vector
    path (``GPUModel.design_time_batch`` / ``occupancy_batch``); the
    limiter *names* are the non-affine residue, lowered through cached
    per-point closures.
    """
    grid = ParamGrid(blocksize=tuple(candidates))
    # the residue cache is keyed by the *space*, so everything the
    # per-point closure reads must enter the key: device, register
    # pressure and shared-memory footprint all change the limiter
    plan = BatchPlan(grid, space_key=space_key or grid.space_hash(
        extra=f"blocksize:{model.spec.name}"
              f":r{point.registers_per_thread}"
              f":s{point.shared_mem_per_block}"))
    plan.vector("time", lambda g: model.design_time_batch(
        profile, point, g.mesh("blocksize")))
    plan.vector("occupancy", lambda g: model.occupancy_batch(
        g.mesh("blocksize"), point.registers_per_thread,
        point.shared_mem_per_block).occupancy)
    plan.residue("limited_by", lambda blocksize: model.occupancy(
        blocksize, point.registers_per_thread,
        point.shared_mem_per_block).limited_by)
    result = plan.evaluate()

    time = result.tensor("time")
    occ = result.tensor("occupancy")
    limited = result.tensor("limited_by")
    triples = [(float(time[i]), int(candidates[i]), float(occ[i]))
               for i in range(len(candidates))]
    return triples, [str(limited[i]) for i in range(len(candidates))]


# ---------------------------------------------------------------------
# Thread-count axis (CPU / OpenMP)
# ---------------------------------------------------------------------
def omp_sweep(model, profile, candidates: Sequence[int],
              space_key: Optional[str] = None) -> List[float]:
    """Lower the thread-count axis: one vectorized roofline evaluation."""
    grid = ParamGrid(threads=tuple(candidates))
    plan = BatchPlan(grid, space_key=space_key or grid.space_hash(
        extra="omp-threads"))
    plan.vector("time", lambda g: model.omp_time_batch(
        profile, g.mesh("threads")))
    result = plan.evaluate()
    time = result.tensor("time")
    return [float(time[i]) for i in range(len(candidates))]
