"""Design-space exploration tasks (the ``O`` rows of Fig. 4).

- :class:`UnrollUntilOvermapDSE` -- the Fig. 2 meta-program: iteratively
  double the kernel outer loop's unroll pragma, running a dpcpp partial
  compile each time, until the device overmaps (LUT >= 90%); export the
  last fitting design.  Designs that overmap at factor 1 are marked
  unsynthesisable (Rush Larsen's fate on both FPGAs, §IV-B.iii).
- :class:`BlocksizeDSE` -- sweep HIP launch blocksizes, scoring each
  with the occupancy-based GPU model ("aim to minimize execution time
  and maximize occupancy", §IV-B.ii).
- :class:`OmpThreadsDSE` -- sweep OpenMP thread counts on the CPU model
  ("selects the maximum number of threads available automatically" for
  embarrassingly parallel benchmarks, §IV-B.i).

Each task submits its whole candidate axis as one batched tensor
evaluation by default (:mod:`repro.flow.sweep` over
:mod:`repro.lang.batch`); ``REPRO_DSE=point`` selects the original
candidate-at-a-time loops.  The two lowerings are element-wise
identical -- same chosen design point, same costs, same reports, same
``dse.point`` telemetry -- which the differential suite pins for every
app and device.  Either way the sweep runs under one ``dse.sweep``
parent span with per-axis ``dse.point`` child events.
"""

from __future__ import annotations

from typing import List, Optional

from repro import obs
from repro.flow import sweep
from repro.flow.task import FlowError, Task, TaskKind
from repro.platforms.cpu import CPUModel
from repro.platforms.gpu import GPUDesignPoint, GPUModel
from repro.platforms.registry import get_platform
from repro.toolchains.dpcpp import DpcppToolchain
from repro.toolchains.hipcc import HipccToolchain
from repro.transforms.openmp import set_num_threads
from repro.transforms.unroll import set_unroll_pragma


class UnrollUntilOvermapDSE(Task):
    """``unroll_until_overmap`` (Fig. 2) for one FPGA device."""

    kind = TaskKind.OPTIMISATION
    dynamic = False
    MAX_FACTOR = 4096
    FACTORS = tuple(2 ** k for k in range(1, 13))  # 2, 4, ..., 4096

    def __init__(self, device: str):
        self.device = device
        self.scope = "FPGA-A10" if device == "arria10" else "FPGA-S10"
        self.name = f"{'A10' if device == 'arria10' else 'S10'} " \
                    "Unroll Until Overmap DSE"
        self.toolchain = DpcppToolchain()

    def run(self, ctx) -> None:
        design = ctx.design
        if design is None:
            raise FlowError("unroll DSE needs a oneAPI design in flight")
        kernel = design.kernel_name
        mode = sweep.dse_mode()
        with obs.span("dse.sweep", dse="unroll", device=self.device,
                      mode=mode) as sp:
            if mode == "batched":
                points = self._run_batched(ctx, design, kernel)
            else:
                points = self._run_point(ctx, design, kernel)
            sweep.record_sweep(sp, mode, "unroll", points)

    # -- shared pieces -------------------------------------------------
    def _mark_unsynthesizable(self, ctx, design, report) -> None:
        design.synthesizable = False
        design.failure_reason = (
            f"design overmaps the {self.device} at unroll factor 1 "
            f"(ALM utilisation {report.alm_utilization:.0%})")
        design.metadata.update(unroll_factor=1, hls_report=report)
        ctx.log(f"    {self.name}: {design.failure_reason}")

    def _finalize(self, ctx, design, kernel, best_factor,
                  best_report) -> None:
        if best_factor > 1:
            for loop in design.ast.function(kernel).outermost_loops():
                set_unroll_pragma(loop, best_factor)
            best_report = self.toolchain.partial_compile(
                design.ast, kernel, self.device)
        design.metadata.update(unroll_factor=best_factor,
                               hls_report=best_report)
        ctx.log(f"    {self.name}: selected unroll factor {best_factor} "
                f"(ALM {best_report.alm_utilization:.0%}, "
                f"DSP {best_report.dsp_utilization:.0%})")

    # -- point-at-a-time lowering (REPRO_DSE=point) --------------------
    def _run_point(self, ctx, design, kernel) -> int:
        # baseline compile at factor 1
        report = self.toolchain.partial_compile(design.ast, kernel,
                                                self.device)
        if report.overmapped:
            self._mark_unsynthesizable(ctx, design, report)
            return 0

        best_factor = 1
        best_report = report
        points = 0
        factor = 2
        while factor <= self.MAX_FACTOR:
            # candidates mutate only the kernel function: clone that
            # subtree, share every other declaration
            candidate = design.ast.clone_function(kernel)
            for loop in candidate.function(kernel).outermost_loops():
                set_unroll_pragma(loop, factor)
            report = self.toolchain.partial_compile(candidate, kernel,
                                                    self.device)
            points += 1
            obs.event("dse.point", dse="unroll", device=self.device,
                      factor=factor, alm=report.alm_utilization,
                      overmapped=report.overmapped)
            if report.overmapped:
                ctx.log(f"    {self.name}: factor {factor} overmaps "
                        f"({report.utilization:.0%}); keeping {best_factor}")
                break
            if report.unroll_factor < factor:
                # pragma ignored (variable-bound inner loop): no point
                # continuing to double
                ctx.log(f"    {self.name}: unroll pragma ineffective "
                        "(variable-bound inner loop); keeping factor 1")
                break
            best_factor = factor
            best_report = report
            factor *= 2
        else:
            ctx.log(f"    {self.name}: stopped at cap {self.MAX_FACTOR}")

        self._finalize(ctx, design, kernel, best_factor, best_report)
        return points

    # -- batched lowering (default) ------------------------------------
    def _run_batched(self, ctx, design, kernel) -> int:
        # the factor-1 baseline is a real compile in both lowerings
        baseline = self.toolchain.partial_compile(design.ast, kernel,
                                                  self.device)
        if baseline.overmapped:
            self._mark_unsynthesizable(ctx, design, baseline)
            return 0

        outcome = sweep.unroll_sweep(self.toolchain, design.ast, kernel,
                                     self.device, self.FACTORS)
        for factor, alm, _util, over in outcome.points:
            obs.event("dse.point", dse="unroll", device=self.device,
                      factor=factor, alm=alm, overmapped=over)
        if outcome.stop == "ineffective":
            ctx.log(f"    {self.name}: unroll pragma ineffective "
                    "(variable-bound inner loop); keeping factor 1")
        elif outcome.stop == "overmap":
            factor, _alm, util, _over = outcome.points[-1]
            ctx.log(f"    {self.name}: factor {factor} overmaps "
                    f"({util:.0%}); keeping {outcome.best_factor}")
        else:
            ctx.log(f"    {self.name}: stopped at cap {self.MAX_FACTOR}")

        self._finalize(ctx, design, kernel, outcome.best_factor, baseline)
        return len(outcome.points)


class BlocksizeDSE(Task):
    """HIP launch blocksize sweep for one GPU device."""

    kind = TaskKind.OPTIMISATION
    dynamic = True  # the paper's DSE times real launches
    CANDIDATES = (64, 128, 192, 256, 384, 512, 768, 1024)

    def __init__(self, device: str):
        self.device = device
        self.scope = "GPU-1080" if device == "gtx1080ti" else "GPU-2080"
        label = "GTX 1080" if device == "gtx1080ti" else "RTX 2080"
        self.name = f"{label} Blocksize DSE"
        self.toolchain = HipccToolchain()

    def run(self, ctx) -> None:
        design = ctx.design
        if design is None:
            raise FlowError("blocksize DSE needs a HIP design in flight")
        model: GPUModel = get_platform(self.device)
        compile_report = self.toolchain.compile(design.ast,
                                                design.kernel_name)
        profile = ctx.profile_for(design)
        point = GPUDesignPoint(
            registers_per_thread=compile_report.registers_per_thread,
            shared_mem_per_block=design.metadata.get("shared_bytes", 0),
            pinned_memory=design.metadata.get("pinned_memory", False),
            uses_shared_buffering=design.metadata.get(
                "shared_buffering", False),
            uses_intrinsics=design.metadata.get("intrinsics", False),
            spilled=compile_report.spilled,
        )
        mode = sweep.dse_mode()
        with obs.span("dse.sweep", dse="blocksize", device=self.device,
                      mode=mode) as sp:
            if mode == "batched":
                candidates, limiters = sweep.blocksize_sweep(
                    model, profile, point, self.CANDIDATES)
            else:
                candidates, limiters = [], []
                for blocksize in self.CANDIDATES:
                    point.blocksize = blocksize
                    time = model.design_time(profile, point)
                    occ = model.occupancy(blocksize,
                                          point.registers_per_thread,
                                          point.shared_mem_per_block)
                    candidates.append((time, blocksize, occ.occupancy))
                    limiters.append(occ.limited_by)
            for time, blocksize, occupancy in candidates:
                obs.event("dse.point", dse="blocksize",
                          device=self.device, blocksize=blocksize,
                          time_s=time, occupancy=occupancy)
            sweep.record_sweep(sp, mode, "blocksize", len(candidates))

        # "minimize execution time and maximize occupancy": among
        # launch configurations within 1% of the optimum, prefer the
        # highest-occupancy (then largest) block
        _, blocksize, occupancy = sweep.select_blocksize(candidates)
        limited_by = limiters[self.CANDIDATES.index(blocksize)]
        design.metadata.update(
            blocksize=blocksize,
            registers_per_thread=compile_report.registers_per_thread,
            register_spill=compile_report.spilled,
            occupancy=occupancy,
            occupancy_limited_by=limited_by,
        )
        ctx.log(f"    {self.name}: blocksize {blocksize} "
                f"({compile_report.registers_per_thread} regs/thread, "
                f"occupancy {occupancy:.0%}, "
                f"limited by {limited_by})")


class OmpThreadsDSE(Task):
    """OpenMP thread-count sweep ("OMP Num. Threads DSE")."""

    kind = TaskKind.OPTIMISATION
    dynamic = True
    scope = "CPU-OMP"
    name = "OMP Num. Threads DSE"

    def run(self, ctx) -> None:
        design = ctx.design
        if design is None:
            raise FlowError("thread DSE needs an OpenMP design in flight")
        model = CPUModel()
        profile = ctx.profile_for(design)
        candidates = [t for t in (1, 2, 4, 8, 16, 24, 32)
                      if t <= model.spec.cores]
        mode = sweep.dse_mode()
        with obs.span("dse.sweep", dse="omp-threads", mode=mode) as sp:
            if mode == "batched":
                times = sweep.omp_sweep(model, profile, candidates)
            else:
                times = [model.omp_time(profile, threads)
                         for threads in candidates]
            for threads, time in zip(candidates, times):
                obs.event("dse.point", dse="omp-threads", threads=threads,
                          time_s=time)
            sweep.record_sweep(sp, mode, "omp-threads", len(candidates))
        best_threads = candidates[sweep.first_min_index(times)]
        design.metadata["num_threads"] = best_threads
        set_num_threads(design.ast, design.kernel_name, best_threads)
        ctx.log(f"    {self.name}: selected {best_threads} threads")
