"""ML-based Path Selection Automation (the paper's future work).

"There is considerable opportunity for sophisticated PSA strategies
incorporating, for example, machine-learning (ML) techniques to make
intelligent decisions, which we are considering for future work"
(§II-B); "developing sophisticated ML-based PSA strategies" (§VI).

This module implements that extension end to end, self-contained (no
external ML dependency):

- :func:`extract_features` -- a fixed feature vector from the accrued
  analysis facts (the same facts the hand-written Fig. 3 strategy
  reads);
- :class:`DecisionTree` -- a small CART classifier (Gini impurity,
  axis-aligned splits) built from scratch;
- :class:`MLTargetSelection` -- a PSA strategy backed by a trained
  tree, with a human-readable decision path in its reasons;
- :func:`train_from_results` -- supervised labels straight from
  *uninformed* flow runs: the target whose best design won is the
  label, exactly the data a team running the paper's uninformed mode
  accumulates for free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.flow.psa import PSADecision, PSAStrategy
from repro.platforms.interconnect import TransferModel

if TYPE_CHECKING:
    from repro.flow.context import FlowContext
    from repro.flow.engine import FlowResult

#: feature vector layout (order is part of the model contract)
FEATURE_NAMES: Tuple[str, ...] = (
    "flops_per_byte",          # static arithmetic intensity
    "log_outer_iterations",    # parallel work available
    "outer_parallel",          # 0/1
    "dependent_inner_loops",   # 0/1
    "inner_fully_unrollable",  # 0/1
    "log_inner_nest_size",     # unrolled size of the dependent nest
    "gather_fraction",         # data-dependent access share
    "transfer_over_cpu",       # T_data_trnsfr / T_cpu (amortised)
    "log_math_calls",          # elementary-function pressure
    "log_local_scalars",       # register pressure proxy
)

TARGETS = ("gpu", "fpga", "omp")


def extract_features(ctx: "FlowContext") -> List[float]:
    """Feature vector from a fully analysed flow context."""
    profile = ctx.kernel_profile()
    intensity = ctx.facts["intensity"]
    transfer = TransferModel().pageable_time(
        profile.transfer_bytes, max(1, profile.kernel_calls))
    transfer /= max(1, profile.transfer_amortization)
    t_cpu = ctx.reference_time()
    return [
        float(intensity.flops_per_byte),
        math.log1p(profile.outer_iterations),
        1.0 if profile.outer_parallel else 0.0,
        1.0 if profile.dependent_inner_loops else 0.0,
        1.0 if profile.inner_fully_unrollable else 0.0,
        math.log1p(profile.inner_fixed_product),
        float(profile.gather_fraction),
        transfer / t_cpu if t_cpu > 0 else 1.0,
        math.log1p(profile.math_calls),
        math.log1p(profile.local_scalars),
    ]


# =====================================================================
# CART decision tree, from scratch
# =====================================================================

@dataclass
class _Node:
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    label: Optional[str] = None      # leaves only
    counts: Optional[Dict[str, int]] = None

    @property
    def is_leaf(self) -> bool:
        return self.label is not None


def _gini(labels: Sequence[str]) -> float:
    total = len(labels)
    if total == 0:
        return 0.0
    impurity = 1.0
    for target in set(labels):
        p = labels.count(target) / total
        impurity -= p * p
    return impurity


def _majority(labels: Sequence[str]) -> str:
    return max(set(labels), key=labels.count)


class DecisionTree:
    """Axis-aligned Gini CART classifier (tiny data, tiny depth)."""

    def __init__(self, max_depth: int = 3, min_samples: int = 1):
        self.max_depth = max_depth
        self.min_samples = min_samples
        self.root: Optional[_Node] = None

    # -- training -----------------------------------------------------
    def fit(self, X: Sequence[Sequence[float]],
            y: Sequence[str]) -> "DecisionTree":
        if len(X) != len(y) or not X:
            raise ValueError("need equal, non-empty X and y")
        self.root = self._build(list(X), list(y), depth=0)
        return self

    def _build(self, X, y, depth) -> _Node:
        counts = {label: y.count(label) for label in set(y)}
        if depth >= self.max_depth or len(set(y)) == 1 \
                or len(y) <= self.min_samples:
            return _Node(label=_majority(y), counts=counts)
        split = self._best_split(X, y)
        if split is None:
            return _Node(label=_majority(y), counts=counts)
        feature, threshold = split
        left_idx = [i for i, row in enumerate(X) if row[feature] <= threshold]
        right_idx = [i for i in range(len(X)) if i not in set(left_idx)]
        if not left_idx or not right_idx:
            return _Node(label=_majority(y), counts=counts)
        return _Node(
            feature=feature,
            threshold=threshold,
            counts=counts,
            left=self._build([X[i] for i in left_idx],
                             [y[i] for i in left_idx], depth + 1),
            right=self._build([X[i] for i in right_idx],
                              [y[i] for i in right_idx], depth + 1),
        )

    def _best_split(self, X, y) -> Optional[Tuple[int, float]]:
        best = None
        best_score = _gini(y)
        n_features = len(X[0])
        for feature in range(n_features):
            values = sorted(set(row[feature] for row in X))
            for lo, hi in zip(values, values[1:]):
                threshold = (lo + hi) / 2.0
                left = [y[i] for i, row in enumerate(X)
                        if row[feature] <= threshold]
                right = [y[i] for i, row in enumerate(X)
                         if row[feature] > threshold]
                score = (len(left) * _gini(left)
                         + len(right) * _gini(right)) / len(y)
                if score < best_score - 1e-12:
                    best_score = score
                    best = (feature, threshold)
        return best

    # -- inference ------------------------------------------------------
    def predict(self, x: Sequence[float]) -> str:
        label, _ = self.predict_with_path(x)
        return label

    def predict_with_path(self, x: Sequence[float]
                          ) -> Tuple[str, List[str]]:
        """Label plus the human-readable decision path."""
        if self.root is None:
            raise ValueError("tree is not fitted")
        node = self.root
        path: List[str] = []
        while not node.is_leaf:
            name = FEATURE_NAMES[node.feature]
            value = x[node.feature]
            if value <= node.threshold:
                path.append(f"{name}={value:.3g} <= {node.threshold:.3g}")
                node = node.left
            else:
                path.append(f"{name}={value:.3g} > {node.threshold:.3g}")
                node = node.right
        path.append(f"leaf -> {node.label} (train counts {node.counts})")
        return node.label, path

    def depth(self) -> int:
        def walk(node):
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root)


# =====================================================================
# Training data from uninformed flow runs
# =====================================================================

def label_from_result(result: "FlowResult") -> str:
    """The winning target of an uninformed run (the supervision signal)."""
    best = result.auto_selected
    if best is None:
        return "omp"
    return {"cpu-omp": "omp", "gpu-hip": "gpu",
            "fpga-oneapi": "fpga"}[best.kind]


def training_row(result: "FlowResult") -> Tuple[List[float], str]:
    """(features, label) from one uninformed FlowResult.

    The features are recomputed from the facts the run accrued, so a
    stored result is a complete training example.
    """
    profile = result.facts["kernel_profile"]
    intensity = result.facts["intensity"]
    transfer = TransferModel().pageable_time(
        profile.transfer_bytes, max(1, profile.kernel_calls))
    transfer /= max(1, profile.transfer_amortization)
    t_cpu = result.reference_time_s
    features = [
        float(intensity.flops_per_byte),
        math.log1p(profile.outer_iterations),
        1.0 if profile.outer_parallel else 0.0,
        1.0 if profile.dependent_inner_loops else 0.0,
        1.0 if profile.inner_fully_unrollable else 0.0,
        math.log1p(profile.inner_fixed_product),
        float(profile.gather_fraction),
        transfer / t_cpu if t_cpu > 0 else 1.0,
        math.log1p(profile.math_calls),
        math.log1p(profile.local_scalars),
    ]
    return features, label_from_result(result)


def train_from_results(results: Sequence["FlowResult"],
                       max_depth: int = 3) -> DecisionTree:
    """Fit a target-selection tree from uninformed flow runs."""
    rows = [training_row(result) for result in results]
    X = [features for features, _ in rows]
    y = [label for _, label in rows]
    return DecisionTree(max_depth=max_depth).fit(X, y)


class MLTargetSelection(PSAStrategy):
    """A learned strategy for branch point A.

    Drop-in replacement for the hand-written Fig. 3 strategy:
    ``FlowEngine(strategy_a=MLTargetSelection(tree)).run(app)``.
    """

    def __init__(self, tree: DecisionTree):
        self.tree = tree

    def select(self, ctx: "FlowContext", name: str,
               paths: List[str]) -> PSADecision:
        features = extract_features(ctx)
        label, path = self.tree.predict_with_path(features)
        reasons = ["ML strategy (CART over analysis facts):"] + [
            f"  {step}" for step in path]
        if label not in paths:
            reasons.append(f"predicted {label!r} unavailable at this "
                           "branch; falling back to first path")
            label = paths[0]
        return PSADecision(name, [label], reasons)
