"""FlowContext: the state a PSA-flow accrues while it runs.

Holds the working AST, the workload, the facts produced by analysis
tasks ("information accrued from target-independent analysis tasks",
§II-B), the designs produced by target branches, and a human-readable
decision trace.  It also centralises program execution so that the
dynamic analyses (trip counts, data movement, aliasing) share one
instrumented run instead of re-executing the application each.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.analysis.access_pattern import analyze_access_pattern
from repro.analysis.common import loop_path
from repro.analysis.dependence import analyze_loop_dependences
from repro.analysis.intensity import analyze_intensity
from repro.analysis.trip_count import static_trip_count
from repro.apps.base import AppSpec
from repro.lang.interpreter import Workload
from repro.lang.profiler import ExecReport
from repro.meta.ast_api import Ast
from repro.meta.ast_nodes import ForStmt
from repro.platforms.cpu import CPUModel
from repro.platforms.profile import BufferProfile, KernelProfile
from repro.toolchains.hipcc import count_kernel_pressure

if TYPE_CHECKING:
    from repro.codegen.design import Design
    from repro.flow.task import FlowObserver

#: the Fig. 3 "can fully unroll?" threshold: a dependent inner nest up
#: to this many unrolled iterations counts as fully unrollable
FULL_UNROLL_THRESHOLD = 32


class FlowContext:
    """Shared state threaded through every task of one flow run."""

    def __init__(self, app: AppSpec, workload: Optional[Workload] = None,
                 scale: float = 1.0,
                 observer: Optional["FlowObserver"] = None):
        self.app = app
        self.ast: Ast = app.ast()
        self.workload = workload if workload is not None else app.workload(scale)
        self.facts: Dict[str, Any] = {}
        self.designs: List["Design"] = []
        self.trace: List[str] = []
        self.design: Optional["Design"] = None  # current target branch design
        self.observer = observer
        self._kernel_report: Optional[ExecReport] = None

    # ------------------------------------------------------------------
    def log(self, message: str) -> None:
        self.trace.append(message)

    # ------------------------------------------------------------------
    # Observer hooks (telemetry; no-ops when no observer is attached)
    # ------------------------------------------------------------------
    def notify_task_start(self, task) -> None:
        if self.observer is not None:
            self.observer.on_task_start(task, self)

    def notify_task_end(self, task, wall_s: float, status: str = "ok",
                        error: Optional[BaseException] = None) -> None:
        if self.observer is not None:
            self.observer.on_task_end(task, self, wall_s, status, error)

    def notify_branch(self, decision) -> None:
        if self.observer is not None:
            self.observer.on_branch(decision, self)

    @property
    def kernel_name(self) -> str:
        extraction = self.facts.get("extraction")
        if extraction is None:
            raise KeyError("hotspot has not been extracted yet")
        return extraction.kernel_name

    def fork(self, label: str) -> "FlowContext":
        """Context for one branch path.

        Facts, designs and trace are *shared* (branches contribute to
        the same flow result); only the per-branch design slot is
        private.
        """
        child = FlowContext.__new__(FlowContext)
        child.app = self.app
        child.ast = self.ast
        child.workload = self.workload
        child.facts = self.facts
        child.designs = self.designs
        child.trace = self.trace
        child.design = None
        child.observer = self.observer
        child._kernel_report = self._kernel_report
        return child

    # ------------------------------------------------------------------
    # Shared executions
    # ------------------------------------------------------------------
    def kernel_report(self) -> ExecReport:
        """One profiled run of the current (extracted) program.

        Shared by every dynamic analysis task; invalidated by transforms
        that change the kernel (``invalidate_kernel_report``).  The run
        goes through :func:`repro.analysis.profile.collect_profile`, so
        across flows (and across processes, with ``REPRO_CACHE_DIR``)
        each (source, workload) pair executes at most once.
        """
        if self._kernel_report is None:
            from repro.analysis.profile import collect_profile
            self._kernel_report = collect_profile(self.ast, self.workload)
        return self._kernel_report

    def invalidate_kernel_report(self) -> None:
        self._kernel_report = None

    # ------------------------------------------------------------------
    # Kernel profiles for the platform models
    # ------------------------------------------------------------------
    def _outer_loop(self, ast: Ast) -> ForStmt:
        fn = ast.function(self.kernel_name)
        loops = fn.outermost_loops()
        if not loops:
            raise KeyError(f"kernel {self.kernel_name}() has no loop")
        return loops[0]

    def build_kernel_profile(self) -> KernelProfile:
        """Distil the current kernel's behaviour into a KernelProfile."""
        report = self.kernel_report()
        kernel = self.kernel_name
        outer = self._outer_loop(self.ast)
        loop_prof = report.loop_profiles.get(outer.node_id)
        if loop_prof is None:
            raise KeyError("kernel outer loop never executed under the "
                           "profiling run")
        counts = loop_prof.inclusive

        # dependence structure
        fn = self.ast.function(kernel)
        outer_dep = analyze_loop_dependences(outer)
        inner_infos = []
        for loop in fn.loops():
            if loop is outer or outer not in list(loop.ancestors()):
                continue
            inner_infos.append((loop, analyze_loop_dependences(loop)))
        dependent_inner = [(loop, info) for loop, info in inner_infos
                           if info.has_dependences]
        # latency-chain penalty applies to true carried dependences;
        # plain reductions unroll into independent partial sums
        carried_chain = any(info.carried for _, info in dependent_inner)
        serial_chain = carried_chain
        fully_unrollable = True
        max_nest = 1
        for loop, _info in dependent_inner:
            size = static_trip_count(loop)
            if size is None:
                fully_unrollable = False
                continue
            for nested in loop.nested_loops():
                trips = static_trip_count(nested)
                if trips is None:
                    size = None
                    break
                size *= trips
            if size is None:
                fully_unrollable = False
            else:
                max_nest = max(max_nest, size)
        if dependent_inner and fully_unrollable:
            fully_unrollable = max_nest <= FULL_UNROLL_THRESHOLD

        # data movement / per-buffer records
        access = analyze_access_pattern(self.ast, kernel)
        records = report.arrays_touched_by(kernel)
        buffers = []
        bytes_in = bytes_out = working = 0.0
        for rec in records.values():
            direction = ("inout" if rec.is_input and rec.is_output
                         else "out" if rec.is_output
                         else "in" if rec.is_input else "none")
            if direction == "none":
                continue
            traffic = (rec.reads + rec.writes) * rec.elem_size
            buffers.append(BufferProfile(
                rec.name, rec.nbytes, traffic,
                rec.name in access.gather_buffers, direction))
            working += rec.nbytes
            if direction in ("in", "inout"):
                bytes_in += rec.nbytes
            if direction in ("out", "inout"):
                bytes_out += rec.nbytes

        intensity = analyze_intensity(self.ast, kernel)
        locals_count, math_calls = count_kernel_pressure(fn)

        profile = KernelProfile(
            kernel_name=kernel,
            flops=counts.flops,
            builtin_flops=counts.builtin_flops,
            int_ops=counts.int_ops,
            mem_bytes=counts.total_bytes,
            kernel_calls=loop_prof.entries,
            outer_iterations=loop_prof.total_iterations,
            inner_fixed_product=max_nest,
            outer_parallel=outer_dep.is_parallel_with_reductions,
            dependent_inner_loops=bool(dependent_inner),
            serial_inner_chain=serial_chain,
            inner_fully_unrollable=fully_unrollable,
            bytes_in=bytes_in,
            bytes_out=bytes_out,
            working_set_bytes=working,
            buffer_profiles=tuple(sorted(buffers, key=lambda b: b.name)),
            transfer_amortization=self.app.hotspot_invocations,
            sp_fraction=intensity.sp_fraction,
            gather_fraction=access.gather_fraction,
            local_scalars=locals_count,
            math_calls=math_calls,
        )
        # extrapolate the interpreted (scaled-down) run to the
        # deployment size the models evaluate at
        return profile.scaled(self.app.eval_scale,
                              self.app.fixed_buffers)

    def kernel_profile(self) -> KernelProfile:
        """Memoized profile of the current kernel (post T-INDEP tasks)."""
        profile = self.facts.get("kernel_profile")
        if profile is None:
            profile = self.build_kernel_profile()
            self.facts["kernel_profile"] = profile
        return profile

    def reference_profile(self) -> KernelProfile:
        """Profile of the *unmodified* hotspot (the Fig. 5 baseline).

        Captured by the extraction task before target-independent
        transforms touch the kernel; falls back to the current profile
        when no transform changed anything.
        """
        return self.facts.get("reference_profile") or self.kernel_profile()

    def reference_time(self) -> float:
        """Single-thread CPU time of the unoptimised hotspot (s)."""
        cached = self.facts.get("reference_time")
        if cached is None:
            cached = CPUModel().reference_time(self.reference_profile())
            self.facts["reference_time"] = cached
        return cached

    def profile_for(self, design: "Design") -> KernelProfile:
        """Kernel profile specialised to one design's precision mix."""
        base = self.kernel_profile()
        intensity = analyze_intensity(design.ast, design.kernel_name)
        return base.with_precision(intensity.sp_fraction)
