"""Design-flow graphs: task sequences and branch points.

The paper's PSA-flow architecture (Fig. 1): "codified design-flow
tasks" composed into sequences, with "design-flow branch points"
introducing divergence; each branch point carries a PSA strategy that
selects which path(s) to take.  A selected path executes on a *forked*
context so divergent branches specialise independent designs while
sharing the accrued analysis facts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence as Seq, Union

from repro import obs
from repro.flow.context import FlowContext
from repro.flow.psa import PSADecision, PSAStrategy, SelectAll
from repro.flow.task import Task


class FlowNode:
    """Base of the flow-graph node hierarchy."""

    def execute(self, ctx: FlowContext) -> None:
        raise NotImplementedError

    def describe(self, indent: int = 0) -> str:
        raise NotImplementedError


class TaskNode(FlowNode):
    def __init__(self, task: Task):
        self.task = task

    def execute(self, ctx: FlowContext) -> None:
        self.task(ctx)

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        dyn = "*" if self.task.dynamic else ""
        return f"{pad}{self.task.name} [{self.task.kind.value}{dyn}]"


class Sequence(FlowNode):
    def __init__(self, *nodes: Union[FlowNode, Task]):
        self.nodes: List[FlowNode] = [
            node if isinstance(node, FlowNode) else TaskNode(node)
            for node in nodes]

    def execute(self, ctx: FlowContext) -> None:
        for node in self.nodes:
            node.execute(ctx)

    def describe(self, indent: int = 0) -> str:
        return "\n".join(node.describe(indent) for node in self.nodes)

    def then(self, node: Union[FlowNode, Task]) -> "Sequence":
        self.nodes.append(node if isinstance(node, FlowNode)
                          else TaskNode(node))
        return self


class BranchPoint(FlowNode):
    """A divergence point with Path Selection Automation.

    ``paths`` maps path names to sub-flows; ``strategy`` decides which
    to take (defaults to select-all, as at the paper's device branches
    B and C).  Every selected path runs on a fork of the context.
    """

    def __init__(self, name: str,
                 paths: Dict[str, Union[FlowNode, Task]],
                 strategy: Optional[PSAStrategy] = None):
        self.name = name
        self.paths: Dict[str, FlowNode] = {
            key: (node if isinstance(node, FlowNode) else TaskNode(node))
            for key, node in paths.items()}
        self.strategy: PSAStrategy = strategy or SelectAll()

    def execute(self, ctx: FlowContext) -> None:
        decision = self.strategy.select(ctx, self.name, list(self.paths))
        ctx.facts[f"psa:{self.name}"] = decision
        ctx.log(f"[PSA] {decision.explain()}")
        ctx.notify_branch(decision)
        obs.event("psa.branch", branch=self.name,
                  strategy=type(self.strategy).__name__,
                  selected=",".join(decision.selected),
                  offered=",".join(self.paths),
                  reasons="; ".join(decision.reasons))
        for path_name in decision.selected:
            branch_ctx = ctx.fork(path_name)
            # the branch inherits the in-flight design (device branches
            # specialise a target design; target branches start fresh)
            branch_ctx.design = ctx.design
            with obs.span(f"branch {self.name}:{path_name}",
                          branch=self.name, path=path_name):
                self.paths[path_name].execute(branch_ctx)

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}<branch {self.name} "
                 f"({type(self.strategy).__name__})>"]
        for name, node in self.paths.items():
            lines.append(f"{pad}  [{name}]")
            lines.append(node.describe(indent + 2))
        return "\n".join(lines)
