"""Deterministic, seeded fault injection for chaos testing.

One process-global :class:`FaultPlan` decides, at each named *injection
site* (``inject("cache.read")``, ``inject("worker.exec")``, ...),
whether that invocation fails.  The decision is a pure function of
``(seed, site, invocation index)`` -- a SHA-256 of the triple compared
against the configured rate -- so a chaos run replays the same fault
sequence every time the same code path executes the same number of
times, and two sites never correlate.

Off by default: with no plan installed :func:`inject` is one ``None``
check (the same null-object discipline as ``obs.span``), so production
hot paths pay nothing.  A plan is installed either via
:func:`install_plan` or the ``REPRO_FAULTS`` environment spec::

    REPRO_FAULTS="seed=7,rate=0.05"                    # all sites
    REPRO_FAULTS="seed=7,rate=0.1,sites=cache.read|worker.exec"
    REPRO_FAULTS="seed=3,rate=0.2,max=10"              # stop after 10

The env path is how pool *worker processes* join a chaos run: they
inherit the variable and parse it at import time, so a storm covers
every process of a traced batch.

Sites wired through the stack (see README "Resilience"):

==================  ====================================================
``cache.read``      ResultCache entry treated as corrupt (quarantined)
``cache.write``     ResultCache.put fails (service skips the write)
``worker.exec``     job execution raises (scheduler retry path)
``worker.crash``    pool worker hard-exits (BrokenProcessPool recovery)
``exec.compiled``   compiled engine faults (interpreter fallback +
                    breaker accounting)
``profile.disk``    profile-cache disk tier read/write fails (miss)
``net.request``     HTTP request between fleet processes misbehaves
                    (:func:`inject_wire`: drop / delay / http_500 /
                    truncated, mode chosen from the same hash word)
``journal.write``   router journal append torn mid-record (the bytes
                    a crash mid-write leaves behind)
``cache.fsync``     durable fsync (cache entry or journal batch) fails
==================  ====================================================

Single-shot sites *raise* :class:`InjectedFault` from :func:`inject`.
The wire site is richer: :func:`inject_wire` returns one of
:data:`WIRE_MODES` (or None), and the transport call site acts it out
-- a drop never sends the request, a truncation sends it and then
loses the response (so the side effect may have happened: exactly the
ambiguity real networks have, which content-hash idempotency absorbs).
The mode comes from a different byte range of the same SHA-256 word
that decides firing, so one seed fixes the full (fire, mode) schedule.

Every fired fault increments ``repro_faults_injected_total{site=...}``
and attaches a ``fault.injected`` event to the current span, so chaos
assertions can check *every* injected fault is visible in telemetry.
"""

from __future__ import annotations

import hashlib
import os
import sys
import threading
from typing import Dict, Iterable, Optional

from repro import obs

_FAULTS_TOTAL = obs.REGISTRY.counter(
    "repro_faults_injected_total",
    "deterministic faults fired by injection site",
    ("site",))

#: the sites this codebase currently threads ``inject`` through
KNOWN_SITES = (
    "cache.read", "cache.write", "worker.exec", "worker.crash",
    "exec.compiled", "profile.disk",
    "net.request", "journal.write", "cache.fsync",
)

#: how a fired ``net.request`` fault manifests on the wire
WIRE_MODES = ("drop", "delay", "http_500", "truncated")


class InjectedFault(RuntimeError):
    """A fault fired by the active :class:`FaultPlan`."""

    def __init__(self, site: str, index: int, seed: int):
        super().__init__(
            f"injected fault at {site!r} (invocation {index}, "
            f"seed {seed})")
        self.site = site
        self.index = index
        self.seed = seed


class FaultPlan:
    """Seeded per-site fault schedule.

    ``rate`` is the per-invocation fire probability; ``sites`` limits
    injection to the named sites (None = every site); ``max_faults``
    caps the total number of fired faults (None = unbounded).
    """

    def __init__(self, seed: int = 0, rate: float = 0.05,
                 sites: Optional[Iterable[str]] = None,
                 max_faults: Optional[int] = None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if max_faults is not None and max_faults < 0:
            raise ValueError(f"max must be >= 0, got {max_faults}")
        self.seed = int(seed)
        self.rate = float(rate)
        self.sites = frozenset(sites) if sites is not None else None
        self.max_faults = max_faults
        self.fired = 0
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _word(self, site: str, index: int) -> int:
        blob = f"{self.seed}:{site}:{index}".encode("utf-8")
        return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")

    def would_fire(self, site: str, index: int) -> bool:
        """The pure (seed, site, index) -> bool decision."""
        if self.rate <= 0.0:
            return False
        return self._word(site, index) / 2.0 ** 64 < self.rate

    def wire_mode(self, site: str, index: int) -> str:
        """The pure (seed, site, index) -> manifestation decision.

        Reads a different byte range of the hash word than
        :meth:`would_fire`, so the fire threshold and the mode choice
        are independent coordinates of one deterministic schedule.
        """
        return WIRE_MODES[(self._word(site, index) >> 16)
                          % len(WIRE_MODES)]

    def _count_and_decide(self, site: str) -> Optional[int]:
        """Count one invocation; the fired index, or None."""
        if self.sites is not None and site not in self.sites:
            return None
        with self._lock:
            index = self._counts.get(site, 0)
            self._counts[site] = index + 1
            if self.max_faults is not None \
                    and self.fired >= self.max_faults:
                return None
            if not self.would_fire(site, index):
                return None
            self.fired += 1
        return index

    def check(self, site: str) -> None:
        """Count one invocation of ``site``; raise when the plan fires."""
        index = self._count_and_decide(site)
        if index is None:
            return
        _FAULTS_TOTAL.inc(site=site)
        obs.event("fault.injected", site=site, index=index,
                  seed=self.seed)
        raise InjectedFault(site, index, self.seed)

    def check_wire(self, site: str) -> Optional[str]:
        """Count one invocation of ``site``; the wire mode if it fires
        (the call site acts the mode out), else None."""
        index = self._count_and_decide(site)
        if index is None:
            return None
        mode = self.wire_mode(site, index)
        _FAULTS_TOTAL.inc(site=site)
        obs.event("fault.injected", site=site, index=index,
                  seed=self.seed, mode=mode)
        return mode

    def counts(self) -> Dict[str, int]:
        """Invocations seen per site (testing/reporting)."""
        with self._lock:
            return dict(self._counts)

    # ------------------------------------------------------------------
    def spec(self) -> str:
        """The ``REPRO_FAULTS`` string reproducing this plan."""
        parts = [f"seed={self.seed}", f"rate={self.rate:g}"]
        if self.sites is not None:
            parts.append("sites=" + "|".join(sorted(self.sites)))
        if self.max_faults is not None:
            parts.append(f"max={self.max_faults}")
        return ",".join(parts)

    @classmethod
    def from_spec(cls, text: str) -> "FaultPlan":
        """Parse ``seed=7,rate=0.05,sites=a|b,max=100``."""
        kwargs: Dict[str, object] = {}
        for field in text.split(","):
            field = field.strip()
            if not field:
                continue
            if "=" not in field:
                raise ValueError(
                    f"REPRO_FAULTS field {field!r} is not key=value")
            name, _, value = field.partition("=")
            name = name.strip().lower()
            value = value.strip()
            if name == "seed":
                kwargs["seed"] = int(value)
            elif name == "rate":
                kwargs["rate"] = float(value)
            elif name == "sites":
                kwargs["sites"] = [s for s in value.split("|") if s]
            elif name == "max":
                kwargs["max_faults"] = int(value)
            else:
                raise ValueError(f"unknown REPRO_FAULTS key {name!r}")
        return cls(**kwargs)

    def __repr__(self):
        return f"<FaultPlan {self.spec()} fired={self.fired}>"


# -------------------------------------------------------------------------
# Process-global plan (null fast path when absent).
# -------------------------------------------------------------------------
_plan: Optional[FaultPlan] = None


def install_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Make ``plan`` the process-global plan; returns it.

    ``install_plan(None)`` is :func:`clear_plan`.
    """
    global _plan
    _plan = plan
    return plan


def clear_plan() -> None:
    global _plan
    _plan = None


def current_plan() -> Optional[FaultPlan]:
    return _plan


def inject(site: str) -> None:
    """Fault-injection chokepoint; no-op unless a plan is installed."""
    if _plan is None:
        return
    _plan.check(site)


def inject_wire(site: str) -> Optional[str]:
    """Wire-fault chokepoint: the mode to act out, or None.

    Unlike :func:`inject` this never raises -- the transport call site
    owns the semantics (drop before the request, truncate after it),
    because *where* the failure lands relative to the side effect is
    the interesting part of a network fault.
    """
    if _plan is None:
        return None
    return _plan.check_wire(site)


class active_plan:
    """``with active_plan(FaultPlan(...)):`` -- scoped install (tests)."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> FaultPlan:
        self._previous = current_plan()
        install_plan(self.plan)
        return self.plan

    def __exit__(self, *exc):
        install_plan(self._previous)
        return False


def configure_from_env() -> Optional[FaultPlan]:
    """Install a plan from ``$REPRO_FAULTS`` (idempotent).

    A malformed spec is reported on stderr and ignored -- a typo in a
    chaos knob must not take down a production run.
    """
    spec = os.environ.get("REPRO_FAULTS") or None
    if spec is None or _plan is not None:
        return _plan
    try:
        return install_plan(FaultPlan.from_spec(spec))
    except (ValueError, TypeError) as exc:
        print(f"repro.resilience: ignoring malformed REPRO_FAULTS "
              f"{spec!r}: {exc}", file=sys.stderr)
        return None


configure_from_env()
