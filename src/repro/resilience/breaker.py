"""Circuit breaker: fail fast instead of failing repeatedly.

The classic three-state machine:

::

    CLOSED --(failure_threshold consecutive failures)--> OPEN
    OPEN   --(cooldown_s of wall clock elapses)--------> HALF-OPEN
    HALF-OPEN --(one success)--> CLOSED
    HALF-OPEN --(one failure)--> OPEN (cooldown restarts)

``allow()`` is the guard callers place in front of the protected
operation: it returns False while the breaker is OPEN (the caller takes
its degraded path -- interpreter instead of compiled engine, fast-fail
instead of enqueue) and True otherwise.  In HALF-OPEN every ``allow()``
is a probe; the first recorded outcome decides whether the breaker
closes or re-opens.  Successes in CLOSED reset the consecutive-failure
count, so only *sustained* failure trips the breaker.

State transitions update the ``repro_breaker_state`` gauge (0 closed,
1 half-open, 2 open, labelled by breaker name) and attach a
``breaker.transition`` event to the current span, so a trip is always
visible in telemetry even when the degraded path hides the errors.

Thread-safe; time injection (``clock=``) keeps the tests off
``time.sleep``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro import obs

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: gauge encoding of the states, for dashboards/alerts
STATE_VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

_BREAKER_STATE = obs.REGISTRY.gauge(
    "repro_breaker_state",
    "circuit-breaker state by name (0 closed, 1 half-open, 2 open)",
    ("name",))
_BREAKER_TRIPS = obs.REGISTRY.counter(
    "repro_breaker_transitions_total",
    "circuit-breaker state transitions",
    ("name", "to"))


class CircuitBreaker:
    """Closed/open/half-open breaker with wall-clock cooldown."""

    def __init__(self, name: str, failure_threshold: int = 3,
                 cooldown_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be > 0, got {cooldown_s}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0          # consecutive, while CLOSED
        self._opened_at: Optional[float] = None
        self.trips = 0              # CLOSED/HALF-OPEN -> OPEN count
        _BREAKER_STATE.set(STATE_VALUES[CLOSED], name=name)

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        # lock held: promote OPEN to HALF-OPEN once the cooldown passed
        if self._state == OPEN and self._opened_at is not None \
                and self._clock() - self._opened_at >= self.cooldown_s:
            self._transition(HALF_OPEN)
        return self._state

    def _transition(self, to: str) -> None:
        # lock held
        if self._state == to:
            return
        self._state = to
        if to == OPEN:
            self._opened_at = self._clock()
            self.trips += 1
        elif to == CLOSED:
            self._failures = 0
            self._opened_at = None
        _BREAKER_STATE.set(STATE_VALUES[to], name=self.name)
        _BREAKER_TRIPS.inc(name=self.name, to=to)
        obs.event("breaker.transition", breaker=self.name, to=to)

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May the protected operation run now?"""
        with self._lock:
            return self._effective_state() != OPEN

    def record_success(self) -> None:
        with self._lock:
            state = self._effective_state()
            if state == HALF_OPEN:
                self._transition(CLOSED)
            elif state == CLOSED:
                self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            state = self._effective_state()
            if state == HALF_OPEN:
                self._transition(OPEN)
            elif state == CLOSED:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._transition(OPEN)

    def reset(self) -> None:
        """Force-close (operator override / tests)."""
        with self._lock:
            self._transition(CLOSED)

    def snapshot(self) -> dict:
        """Plain-data state for health endpoints and dashboards."""
        with self._lock:
            return {
                "name": self.name,
                "state": self._effective_state(),
                "failures": self._failures,
                "trips": self.trips,
                "cooldown_s": self.cooldown_s,
            }

    def __repr__(self):
        return (f"<CircuitBreaker {self.name} {self.state} "
                f"failures={self._failures} trips={self.trips}>")
