"""repro.resilience -- fault injection, containment, graceful degradation.

The harden-then-chaos-test toolkit the service stack leans on:

- :mod:`repro.resilience.faults` -- a process-global seeded
  :class:`FaultPlan` with named injection sites threaded through the
  result cache, scheduler payloads, execution engines and profile
  cache; off by default, configured via API or ``$REPRO_FAULTS``,
  deterministic per (seed, site, invocation index) so chaos runs
  replay;
- :mod:`repro.resilience.breaker` -- :class:`CircuitBreaker`
  (closed/open/half-open, wall-clock cooldown) guarding compiled
  execution and service admission;
- :mod:`repro.resilience.deadletter` -- :class:`DeadLetterQueue`, the
  persisted quarantine for payloads that keep crashing workers,
  inspectable via ``python -m repro service dead-letter``.

Quick chaos run::

    REPRO_FAULTS="seed=7,rate=0.05" REPRO_RETRIES=3 \\
        python -m repro eval fig5 --trace-out chaos.json
"""

from repro.resilience.breaker import (
    CLOSED, HALF_OPEN, OPEN, CircuitBreaker, STATE_VALUES,
)
from repro.resilience.deadletter import DEAD_LETTER_DIRNAME, DeadLetterQueue
from repro.resilience.faults import (
    FaultPlan, InjectedFault, KNOWN_SITES, WIRE_MODES, active_plan,
    clear_plan, configure_from_env, current_plan, inject, inject_wire,
    install_plan,
)

__all__ = [
    "CLOSED", "HALF_OPEN", "OPEN", "CircuitBreaker", "STATE_VALUES",
    "DEAD_LETTER_DIRNAME", "DeadLetterQueue",
    "FaultPlan", "InjectedFault", "KNOWN_SITES", "WIRE_MODES",
    "active_plan", "clear_plan", "configure_from_env", "current_plan",
    "inject", "inject_wire", "install_plan",
]
