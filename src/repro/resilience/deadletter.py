"""Dead-letter quarantine: jobs the service refuses to keep retrying.

A payload that keeps crashing pool workers (or is otherwise declared
poisonous) is *excluded* from further scheduling and parked here with
everything an operator needs to diagnose it: the job spec, the reason,
crash/attempt counts and a timestamp.  The queue persists as one JSON
file per job key under ``<cache root>/.deadletter/`` -- next to the
result cache, so one directory holds the whole service state -- and is
inspectable via ``python -m repro service dead-letter --cache-dir DIR``.

With no cache root the queue is memory-only (same API), which is what
uncached services and tests get.  ``contains`` answers from an
in-memory key set loaded once at construction, so the scheduler-path
exclusion check costs a set lookup, not a stat.

``repro_dead_letter_total`` counts additions; the
``repro_dead_letter_size`` gauge tracks the live size -- the service's
overload breaker watches additions to decide when to shed load.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional

from repro import obs

#: subdirectory of the cache root holding quarantined job records
DEAD_LETTER_DIRNAME = ".deadletter"

_DEAD_LETTERS = obs.REGISTRY.counter(
    "repro_dead_letter_total",
    "jobs quarantined into the dead-letter queue")
_DEAD_LETTER_SIZE = obs.REGISTRY.gauge(
    "repro_dead_letter_size",
    "jobs currently dead-lettered")


class DeadLetterQueue:
    """Persisted (or memory-only) quarantine keyed by job content hash."""

    def __init__(self, root: Optional[str] = None):
        self.root = str(root) if root else None
        self._lock = threading.Lock()
        self._records: Dict[str, Dict[str, Any]] = {}
        if self.root is not None:
            os.makedirs(self.root, exist_ok=True)
            self._load()
        _DEAD_LETTER_SIZE.set(len(self._records))

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        assert self.root is not None
        return os.path.join(self.root, f"{key}.json")

    def _load(self) -> None:
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(".json") or name.startswith(".tmp-"):
                continue
            try:
                with open(os.path.join(self.root, name), "r",
                          encoding="utf-8") as fh:
                    record = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue  # unreadable quarantine record: skip, keep file
            key = record.get("key") or name[:-len(".json")]
            self._records[key] = record

    # ------------------------------------------------------------------
    def add(self, key: str, job_spec: Optional[Dict[str, Any]],
            reason: str, attempts: int = 0,
            crashes: int = 0) -> Dict[str, Any]:
        """Quarantine ``key``; idempotent (last reason wins)."""
        record = {
            "key": key,
            "job": job_spec or {},
            "reason": reason,
            "attempts": attempts,
            "crashes": crashes,
            "quarantined_at": time.time(),
        }
        with self._lock:
            created = key not in self._records
            self._records[key] = record
            size = len(self._records)
        if self.root is not None:
            path = self._path(key)
            fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-",
                                       suffix=".json")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(record, fh, indent=2)
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        if created:
            _DEAD_LETTERS.inc()
        _DEAD_LETTER_SIZE.set(size)
        obs.event("deadletter.add", key=key[:12], reason=reason)
        return record

    def contains(self, key: str) -> bool:
        with self._lock:
            return key in self._records

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            record = self._records.get(key)
            return dict(record) if record is not None else None

    def entries(self) -> List[Dict[str, Any]]:
        """Every quarantined record, oldest first."""
        with self._lock:
            records = [dict(r) for r in self._records.values()]
        return sorted(records, key=lambda r: r.get("quarantined_at", 0.0))

    def remove(self, key: str) -> bool:
        """Release one job from quarantine (it may be scheduled again)."""
        with self._lock:
            found = self._records.pop(key, None) is not None
            size = len(self._records)
        if found and self.root is not None:
            try:
                os.remove(self._path(key))
            except OSError:
                pass
        if found:
            _DEAD_LETTER_SIZE.set(size)
        return found

    def purge(self) -> int:
        """Release everything; returns the number removed."""
        with self._lock:
            keys = list(self._records)
            self._records.clear()
        if self.root is not None:
            for key in keys:
                try:
                    os.remove(self._path(key))
                except OSError:
                    pass
        _DEAD_LETTER_SIZE.set(0)
        return len(keys)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __repr__(self):
        where = self.root or "memory"
        return f"<DeadLetterQueue {where} entries={len(self)}>"
