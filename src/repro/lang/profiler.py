"""Execution profiles: the virtual clock and event counters.

A native run of a timer-instrumented binary yields wall-clock times,
hardware counters and transfer sizes.  The interpreter instead advances
a *virtual clock* in abstract cycles -- each arithmetic operation,
memory access and builtin call has a fixed cycle weight -- and
attributes events to the loop structure being executed.  Every dynamic
design-flow task consumes this :class:`ExecReport`:

- hotspot detection reads per-timer virtual times;
- trip-count analysis reads per-loop entry/iteration records;
- data-movement analysis reads per-function array access records;
- pointer-alias analysis reads per-call pointer argument logs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

# Cycle weights of the virtual clock.  Only ratios matter: they rank
# loops for hotspot detection and provide the reference "1-thread CPU"
# baseline shape.  (Absolute times come from the platform models.)
CYCLES_FLOP = 1.0
CYCLES_INT_OP = 0.5
CYCLES_MEM_ACCESS = 1.0      # per scalar load/store (cache-resident cost)
CYCLES_PER_BYTE = 0.0        # bandwidth effects modelled by platforms
CYCLES_BRANCH = 0.5
CYCLES_CALL = 2.0


class Counter:
    """A bundle of additive event counts."""

    __slots__ = ("flops", "int_ops", "mem_reads", "mem_writes",
                 "bytes_read", "bytes_written", "branches", "calls",
                 "builtin_flops")

    def __init__(self):
        self.flops = 0
        self.int_ops = 0
        self.mem_reads = 0
        self.mem_writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.branches = 0
        self.calls = 0
        self.builtin_flops = 0

    def add(self, other: "Counter") -> None:
        self.flops += other.flops
        self.int_ops += other.int_ops
        self.mem_reads += other.mem_reads
        self.mem_writes += other.mem_writes
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.branches += other.branches
        self.calls += other.calls
        self.builtin_flops += other.builtin_flops

    @property
    def total_flops(self) -> int:
        """Arithmetic plus builtin (math-function) floating operations."""
        return self.flops + self.builtin_flops

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def cycles(self) -> float:
        """Virtual cycles represented by these counts."""
        return (self.total_flops * CYCLES_FLOP
                + self.int_ops * CYCLES_INT_OP
                + (self.mem_reads + self.mem_writes) * CYCLES_MEM_ACCESS
                + self.total_bytes * CYCLES_PER_BYTE
                + self.branches * CYCLES_BRANCH
                + self.calls * CYCLES_CALL)

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        return (f"Counter(flops={self.total_flops}, int={self.int_ops}, "
                f"bytes={self.total_bytes})")


class LoopProfile:
    """Per-loop dynamic record (inclusive of nested loops and callees)."""

    def __init__(self, loop_id: int):
        self.loop_id = loop_id
        self.entries = 0                  # times the loop was entered
        self.trip_counts: List[int] = []  # iterations per entry
        self.inclusive = Counter()

    @property
    def total_iterations(self) -> int:
        return sum(self.trip_counts)

    @property
    def min_trips(self) -> int:
        return min(self.trip_counts) if self.trip_counts else 0

    @property
    def max_trips(self) -> int:
        return max(self.trip_counts) if self.trip_counts else 0

    @property
    def avg_trips(self) -> float:
        if not self.trip_counts:
            return 0.0
        return sum(self.trip_counts) / len(self.trip_counts)

    @property
    def constant_trips(self) -> bool:
        """True when every dynamic entry ran the same iteration count."""
        return len(set(self.trip_counts)) <= 1 and bool(self.trip_counts)

    def cycles(self) -> float:
        return self.inclusive.cycles()

    def __repr__(self):
        return (f"<LoopProfile loop={self.loop_id} entries={self.entries} "
                f"iters={self.total_iterations} cycles={self.cycles():.0f}>")


class ArrayAccessRecord:
    """Per-function, per-buffer access summary for data-movement analysis."""

    __slots__ = ("name", "nbytes", "elem_size", "reads", "writes",
                 "read_before_write")

    def __init__(self, name: str, nbytes: int, elem_size: int):
        self.name = name
        self.nbytes = nbytes
        self.elem_size = elem_size
        self.reads = 0
        self.writes = 0
        self.read_before_write = False

    @property
    def is_input(self) -> bool:
        """Buffer must be copied *to* the accelerator."""
        return self.reads > 0 and (self.read_before_write or self.writes == 0)

    @property
    def is_output(self) -> bool:
        """Buffer must be copied *back* from the accelerator."""
        return self.writes > 0


class PointerArgEvent:
    """Pointer arguments observed at one dynamic call of a function."""

    __slots__ = ("fn_name", "args")

    def __init__(self, fn_name: str, args: List[Tuple[str, int, int, int]]):
        # args: (param_name, array_id, offset, reachable_elements)
        self.fn_name = fn_name
        self.args = args


class ExecReport:
    """Everything a dynamic design-flow task can observe from one run."""

    def __init__(self):
        self.global_counter = Counter()
        self.loop_profiles: Dict[int, LoopProfile] = {}
        self.timers: Dict[str, float] = {}          # timer id -> virtual cycles
        self.fn_array_access: Dict[str, Dict[str, ArrayAccessRecord]] = {}
        self.pointer_events: List[PointerArgEvent] = []
        self.stdout: List[str] = []
        self.return_value = None
        self.steps = 0

    # -- accessors used by analyses -----------------------------------------
    def loop(self, loop_id: int) -> LoopProfile:
        prof = self.loop_profiles.get(loop_id)
        if prof is None:
            prof = LoopProfile(loop_id)
            self.loop_profiles[loop_id] = prof
        return prof

    def total_cycles(self) -> float:
        return self.global_counter.cycles()

    def timer(self, name: str) -> float:
        return self.timers.get(name, 0.0)

    def arrays_touched_by(self, fn_name: str) -> Dict[str, ArrayAccessRecord]:
        return self.fn_array_access.get(fn_name, {})

    def calls_of(self, fn_name: str) -> List[PointerArgEvent]:
        return [e for e in self.pointer_events if e.fn_name == fn_name]

    def output_text(self) -> str:
        return "".join(self.stdout)

    def __repr__(self):
        return (f"<ExecReport cycles={self.total_cycles():.0f} "
                f"loops={len(self.loop_profiles)} timers={len(self.timers)}>")
