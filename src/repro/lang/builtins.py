"""Builtin functions available to UHL programs.

Three groups:

- **libm** -- the math functions benchmarks call (``sqrt``/``sqrtf``,
  ``exp``/``expf``, ``erfc`` ...).  Each carries a FLOP cost charged to
  the virtual clock; single-precision variants are cheaper, which is
  what makes the "Employ SP Math Fns" transform observable in the
  models.
- **workload** -- ``ws_int``/``ws_double`` scalars and
  ``ws_array_*(name, size)`` buffers supplied by the experiment
  harness.  This mirrors reading problem sizes/input files in the
  paper's benchmarks while keeping runs deterministic.
- **instrumentation** -- ``timer_start``/``timer_stop`` (inserted by the
  hotspot-detection meta-program, exactly the "loop timers" of Fig. 3),
  ``printf``, and a deterministic ``rand01``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, NamedTuple, Optional

from repro.meta.ast_nodes import CType


class BuiltinSpec(NamedTuple):
    """Descriptor of one builtin: python impl + virtual-clock FLOP cost."""

    fn: Callable
    flop_cost: int          # charged per call to the virtual clock
    single_precision: bool  # True for the 'f'-suffixed SP variants


def _erfc(x: float) -> float:
    return math.erfc(x)


def _safe(fn: Callable[[float], float]) -> Callable[[float], float]:
    """Clamp domain errors to IEEE-style results instead of raising."""

    def wrapped(x: float) -> float:
        try:
            return fn(x)
        except ValueError:
            return float("nan")
        except OverflowError:
            return float("inf") if x > 0 else 0.0

    return wrapped


# FLOP costs approximate instruction-level costs of libm implementations
# (SP variants cheaper; used by the virtual clock and, more importantly,
# scaled by the platform models' special-function throughput).
MATH_BUILTINS: Dict[str, BuiltinSpec] = {
    "sqrt": BuiltinSpec(_safe(math.sqrt), 8, False),
    "sqrtf": BuiltinSpec(_safe(math.sqrt), 4, True),
    "rsqrt": BuiltinSpec(_safe(lambda x: 1.0 / math.sqrt(x)), 8, False),
    "rsqrtf": BuiltinSpec(_safe(lambda x: 1.0 / math.sqrt(x)), 2, True),
    "exp": BuiltinSpec(_safe(math.exp), 16, False),
    "expf": BuiltinSpec(_safe(math.exp), 8, True),
    "log": BuiltinSpec(_safe(math.log), 16, False),
    "logf": BuiltinSpec(_safe(math.log), 8, True),
    "pow": BuiltinSpec(lambda x, y: math.pow(x, y), 24, False),
    "powf": BuiltinSpec(lambda x, y: math.pow(x, y), 12, True),
    "sin": BuiltinSpec(_safe(math.sin), 12, False),
    "sinf": BuiltinSpec(_safe(math.sin), 6, True),
    "cos": BuiltinSpec(_safe(math.cos), 12, False),
    "cosf": BuiltinSpec(_safe(math.cos), 6, True),
    "tanh": BuiltinSpec(_safe(math.tanh), 16, False),
    "tanhf": BuiltinSpec(_safe(math.tanh), 8, True),
    "erfc": BuiltinSpec(_safe(_erfc), 32, False),
    "erfcf": BuiltinSpec(_safe(_erfc), 16, True),
    "fabs": BuiltinSpec(abs, 1, False),
    "fabsf": BuiltinSpec(abs, 1, True),
    "floor": BuiltinSpec(_safe(math.floor), 1, False),
    "floorf": BuiltinSpec(_safe(math.floor), 1, True),
    "fmin": BuiltinSpec(min, 1, False),
    "fminf": BuiltinSpec(min, 1, True),
    "fmax": BuiltinSpec(max, 1, False),
    "fmaxf": BuiltinSpec(max, 1, True),
}

# SP<->DP name pairs consumed by the "Employ SP Math Fns" transform and
# its inverse; a name maps to its single-precision spelling.
SP_VARIANT: Dict[str, str] = {
    name: name + "f" for name in
    ("sqrt", "rsqrt", "exp", "log", "pow", "sin", "cos", "tanh", "erfc",
     "fabs", "floor", "fmin", "fmax")
}

# GPU "Employ Specialised Math Fns" rewrites (hardware intrinsics):
# cheaper, device-only spellings of common SP functions.
GPU_INTRINSIC: Dict[str, str] = {
    "sqrtf": "__fsqrt_rn",
    "expf": "__expf",
    "logf": "__logf",
    "sinf": "__sinf",
    "cosf": "__cosf",
    "powf": "__powf",
}

# Intrinsics execute on the interpreter like their SP sources but carry
# reduced costs (special-function-unit throughput).
for _src, _dst in GPU_INTRINSIC.items():
    _spec = MATH_BUILTINS[_src]
    MATH_BUILTINS[_dst] = BuiltinSpec(_spec.fn, max(1, _spec.flop_cost // 2), True)


class LCG:
    """Deterministic 64-bit linear congruential generator for rand01()."""

    MULT = 6364136223846793005
    INC = 1442695040888963407
    MASK = (1 << 64) - 1

    def __init__(self, seed: int = 42):
        self.state = (seed ^ 0x9E3779B97F4A7C15) & self.MASK

    def next01(self) -> float:
        self.state = (self.state * self.MULT + self.INC) & self.MASK
        return (self.state >> 11) / float(1 << 53)


_INT = CType("int")
_FLOAT = CType("float")
_DOUBLE = CType("double")

ARRAY_BUILTIN_TYPES: Dict[str, CType] = {
    "ws_array_int": _INT,
    "ws_array_float": _FLOAT,
    "ws_array_double": _DOUBLE,
}

SCALAR_WS_BUILTINS = ("ws_int", "ws_double", "ws_float")

INSTRUMENTATION_BUILTINS = ("timer_start", "timer_stop", "printf", "rand01")


def is_builtin(name: str) -> bool:
    return (name in MATH_BUILTINS
            or name in ARRAY_BUILTIN_TYPES
            or name in SCALAR_WS_BUILTINS
            or name in INSTRUMENTATION_BUILTINS)


def builtin_flop_cost(name: str) -> int:
    """Static FLOP cost of a call to ``name`` (0 for non-math builtins)."""
    spec = MATH_BUILTINS.get(name)
    return spec.flop_cost if spec else 0


def builtin_is_single(name: str) -> Optional[bool]:
    spec = MATH_BUILTINS.get(name)
    return spec.single_precision if spec else None
