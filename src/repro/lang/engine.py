"""Execution-engine dispatch: closure-compiled by default, tree-walking
interpreter on request (``REPRO_EXEC=interp``) or as an exact fallback.

``execute_unit`` is the single entry point every dynamic execution in
the repo goes through (``Ast.execute`` delegates here).  That makes it
the natural place to hang *execution observers* -- callbacks notified
once per dynamic program execution, used by tests and telemetry to
assert how many executions a flow actually performs -- and the
``repro.obs`` instrumentation: one span per execution and one
``repro_exec_total{mode=...}`` count per engine that actually ran.

Fallback rules keeping the two engines observationally identical:

- :class:`CompileUnsupported` (raised while compiling): the unit uses a
  construct the compiler does not model; run the interpreter instead.
- :class:`CompiledBailout` (raised mid-run): a runtime value broke the
  compiler's static typing assumptions.  The partially-mutated workload
  buffers are discarded and the same workload re-runs interpreted.
- any *other* exception out of ``compile_unit`` is a compiler bug, not
  the program's fault: it is contained (fallback ``compile-crash``)
  rather than propagated, so a compiler defect degrades throughput,
  never correctness.

A per-unit :class:`~repro.resilience.CircuitBreaker` watches these
dynamic failures (bailouts, compile crashes, injected faults --
*not* deterministic ``CompileUnsupported``): a unit that keeps
bailing out stops paying the compile-then-discard tax and goes
straight to the interpreter until the breaker's cooldown re-admits a
probe.  Breakers are keyed weakly, so dropping a unit drops its
breaker.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Callable, List, Optional, Sequence

from repro import obs
from repro.lang.compiler import (
    CompiledBailout, CompileUnsupported, compile_unit,
)
from repro.lang.interpreter import ExecReport, Interpreter, Workload
from repro.meta.ast_nodes import TranslationUnit
from repro.resilience import CircuitBreaker, faults

_MODES = ("interp", "compiled")

# Observer registry: the service notifies from concurrent worker
# threads, so registration/removal and the notify snapshot are all
# lock-guarded.  Registration is idempotent -- re-adding a callback
# (e.g. a module-level telemetry hook imported twice) must not double
# its notifications.
_observers: List[Callable] = []
_observers_lock = threading.Lock()

_EXEC_TOTAL = obs.REGISTRY.counter(
    "repro_exec_total",
    "dynamic program executions by engine that actually ran",
    ("mode",))
_EXEC_FALLBACKS = obs.REGISTRY.counter(
    "repro_exec_fallback_total",
    "compiled-engine fallbacks to the interpreter",
    ("reason",))


def add_execution_observer(fn: Callable) -> None:
    """Register ``fn(unit, workload, entry, mode)`` called once per
    dynamic program execution.  ``mode`` names the engine that actually
    runs: ``"compiled"``, ``"interp"``, or ``"interp-fallback"`` for the
    interpreter re-run after a mid-run :class:`CompiledBailout` (which
    therefore notifies twice -- two executions really happen).

    Thread-safe and idempotent: adding an already-registered callback
    is a no-op."""
    with _observers_lock:
        if fn not in _observers:
            _observers.append(fn)


def remove_execution_observer(fn: Callable) -> None:
    with _observers_lock:
        try:
            _observers.remove(fn)
        except ValueError:
            pass


def _notify(unit, workload, entry: str, mode: str) -> None:
    _EXEC_TOTAL.inc(mode=mode)
    with _observers_lock:
        observers = list(_observers)
    for fn in observers:
        fn(unit, workload, entry, mode)


def execution_mode() -> str:
    """The engine selected by ``REPRO_EXEC`` (default: compiled)."""
    mode = os.environ.get("REPRO_EXEC", "compiled").strip().lower()
    return mode if mode in _MODES else "compiled"


# Per-unit breakers guarding the compiled engine.  Weak keys: a breaker
# lives exactly as long as its TranslationUnit.
_breakers: "weakref.WeakKeyDictionary[TranslationUnit, CircuitBreaker]" = \
    weakref.WeakKeyDictionary()
_breakers_lock = threading.Lock()

#: consecutive dynamic compiled-path failures before a unit's breaker opens
BREAKER_THRESHOLD = 3
#: seconds an open breaker keeps a unit on the interpreter
BREAKER_COOLDOWN_S = 30.0


def _breaker_for(unit: TranslationUnit) -> CircuitBreaker:
    with _breakers_lock:
        breaker = _breakers.get(unit)
        if breaker is None:
            breaker = CircuitBreaker(
                "exec.compiled",
                failure_threshold=BREAKER_THRESHOLD,
                cooldown_s=BREAKER_COOLDOWN_S)
            _breakers[unit] = breaker
        return breaker


def breaker_state(unit: TranslationUnit) -> str:
    """The unit's compiled-path breaker state ('closed' if none yet)."""
    with _breakers_lock:
        breaker = _breakers.get(unit)
    return breaker.state if breaker is not None else "closed"


def reset_breakers() -> None:
    """Forget all compiled-path breakers (tests)."""
    with _breakers_lock:
        _breakers.clear()


def execute_unit(unit: TranslationUnit,
                 workload: Optional[Workload] = None,
                 entry: str = "main",
                 max_steps: Optional[int] = None,
                 args: Sequence = (),
                 mode: Optional[str] = None) -> ExecReport:
    """Run ``entry`` in ``unit`` under the selected engine."""
    if mode is None:
        mode = execution_mode()
    if workload is None:
        workload = Workload()
    with obs.span("execute_unit", entry=entry, requested=mode) as sp:
        return _dispatch(unit, workload, entry, max_steps, args, mode, sp)


def _dispatch(unit, workload, entry, max_steps, args, mode, sp) -> ExecReport:
    if mode == "compiled":
        breaker = _breaker_for(unit)
        if not breaker.allow():
            # this unit keeps failing compiled; stop paying the
            # compile-then-discard tax until the cooldown passes
            _EXEC_FALLBACKS.inc(reason="breaker-open")
            sp.event("fallback", reason="breaker-open")
        else:
            program = None
            try:
                faults.inject("exec.compiled")
                program = compile_unit(unit)
            except CompileUnsupported as exc:
                # deterministic property of the program, not a failure:
                # does not feed the breaker.  Nothing ran yet.
                _EXEC_FALLBACKS.inc(reason="compile-unsupported")
                sp.event("fallback", reason="compile-unsupported",
                         detail=str(exc))
            except faults.InjectedFault as exc:
                breaker.record_failure()
                _EXEC_FALLBACKS.inc(reason="fault-injected")
                sp.event("fallback", reason="fault-injected",
                         detail=str(exc))
            except Exception as exc:
                # a compiler bug: contain it, degrade to the
                # interpreter, and strike the breaker
                breaker.record_failure()
                _EXEC_FALLBACKS.inc(reason="compile-crash")
                sp.event("fallback", reason="compile-crash",
                         detail=f"{type(exc).__name__}: {exc}")
            if program is not None:
                _notify(unit, workload, entry, "compiled")
                try:
                    report = program.run(workload, entry, max_steps, args)
                    breaker.record_success()
                    sp.set(mode="compiled")
                    return report
                except CompiledBailout as exc:
                    # discard buffers the aborted compiled run may have
                    # touched; the interpreter re-derives them from the
                    # workload spec
                    workload.reset_buffers()
                    breaker.record_failure()
                    _EXEC_FALLBACKS.inc(reason="compiled-bailout")
                    sp.event("fallback", reason="compiled-bailout",
                             detail=str(exc))
                    _notify(unit, workload, entry, "interp-fallback")
                sp.set(mode="interp-fallback")
                return Interpreter(unit, workload).run(entry, max_steps,
                                                       args)
    _notify(unit, workload, entry, "interp")
    sp.set(mode="interp")
    return Interpreter(unit, workload).run(entry, max_steps, args)
