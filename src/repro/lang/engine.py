"""Execution-engine dispatch: closure-compiled by default, tree-walking
interpreter on request (``REPRO_EXEC=interp``) or as an exact fallback.

``execute_unit`` is the single entry point every dynamic execution in
the repo goes through (``Ast.execute`` delegates here).  That makes it
the natural place to hang *execution observers* -- callbacks notified
once per dynamic program execution, used by tests and telemetry to
assert how many executions a flow actually performs.

Fallback rules keeping the two engines observationally identical:

- :class:`CompileUnsupported` (raised while compiling): the unit uses a
  construct the compiler does not model; run the interpreter instead.
- :class:`CompiledBailout` (raised mid-run): a runtime value broke the
  compiler's static typing assumptions.  The partially-mutated workload
  buffers are discarded and the same workload re-runs interpreted.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence

from repro.lang.compiler import (
    CompiledBailout, CompileUnsupported, compile_unit,
)
from repro.lang.interpreter import ExecReport, Interpreter, Workload
from repro.meta.ast_nodes import TranslationUnit

_MODES = ("interp", "compiled")

_observers: List[Callable] = []


def add_execution_observer(fn: Callable) -> None:
    """Register ``fn(unit, workload, entry, mode)`` called once per
    dynamic program execution.  ``mode`` names the engine that actually
    runs: ``"compiled"``, ``"interp"``, or ``"interp-fallback"`` for the
    interpreter re-run after a mid-run :class:`CompiledBailout` (which
    therefore notifies twice -- two executions really happen)."""
    _observers.append(fn)


def _notify(unit, workload, entry: str, mode: str) -> None:
    for fn in list(_observers):
        fn(unit, workload, entry, mode)


def remove_execution_observer(fn: Callable) -> None:
    try:
        _observers.remove(fn)
    except ValueError:
        pass


def execution_mode() -> str:
    """The engine selected by ``REPRO_EXEC`` (default: compiled)."""
    mode = os.environ.get("REPRO_EXEC", "compiled").strip().lower()
    return mode if mode in _MODES else "compiled"


def execute_unit(unit: TranslationUnit,
                 workload: Optional[Workload] = None,
                 entry: str = "main",
                 max_steps: Optional[int] = None,
                 args: Sequence = (),
                 mode: Optional[str] = None) -> ExecReport:
    """Run ``entry`` in ``unit`` under the selected engine."""
    if mode is None:
        mode = execution_mode()
    if workload is None:
        workload = Workload()
    if mode == "compiled":
        try:
            program = compile_unit(unit)
        except CompileUnsupported:
            program = None  # nothing ran yet; fall through to interp
        if program is not None:
            _notify(unit, workload, entry, "compiled")
            try:
                return program.run(workload, entry, max_steps, args)
            except CompiledBailout:
                # discard buffers the aborted compiled run may have
                # touched; the interpreter re-derives them from the
                # workload spec
                workload.reset_buffers()
                _notify(unit, workload, entry, "interp-fallback")
            return Interpreter(unit, workload).run(entry, max_steps, args)
    _notify(unit, workload, entry, "interp")
    return Interpreter(unit, workload).run(entry, max_steps, args)
