"""Runtime values for the UHL interpreter.

Scalars are plain Python ``int``/``float``/``bool`` (fast under a
tree-walking evaluator).  Buffers are :class:`ArrayValue` objects with a
stable identity used by the pointer-alias and data-movement analyses;
pointers are :class:`PointerValue` (base array + element offset), so
pointer arithmetic and aliasing behave like C.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Union

from repro.meta.ast_nodes import CType

_array_ids = itertools.count(1)

Scalar = Union[int, float, bool]


class ArrayValue:
    """A contiguous typed buffer.

    Stores elements in a Python list for fast interpreter access; the
    declared element :class:`CType` drives byte accounting and the
    integer/float coercion applied on store.
    """

    __slots__ = ("data", "elem_type", "name", "array_id", "is_local",
                 "elem_size")

    def __init__(self, size: int, elem_type: CType, name: str = "",
                 fill: Scalar = 0, is_local: bool = False):
        if size < 0:
            raise ValueError(f"negative array size {size}")
        self.elem_type = elem_type
        # cached: sizeof() is consulted on every element access for
        # byte accounting, millions of times per run
        self.elem_size = elem_type.sizeof()
        self.name = name
        self.array_id = next(_array_ids)
        # local (stack) arrays live in registers/L1 on every target and
        # never reach DRAM; the profiler excludes them from byte counts
        self.is_local = is_local
        if elem_type.is_floating:
            self.data: List[Scalar] = [float(fill)] * size
        else:
            self.data = [int(fill)] * size

    @classmethod
    def from_values(cls, values: Sequence[Scalar], elem_type: CType,
                    name: str = "") -> "ArrayValue":
        arr = cls(0, elem_type, name)
        if elem_type.is_floating:
            arr.data = [float(v) for v in values]
        else:
            arr.data = [int(v) for v in values]
        return arr

    def __len__(self) -> int:
        return len(self.data)

    @property
    def nbytes(self) -> int:
        return len(self.data) * self.elem_size

    def coerce(self, value: Scalar) -> Scalar:
        """Apply C assignment conversion for this element type."""
        if self.elem_type.is_floating:
            return float(value)
        return int(value)

    def to_list(self) -> List[Scalar]:
        return list(self.data)

    def __repr__(self):
        return (f"<ArrayValue {self.name or '?'} #{self.array_id} "
                f"{self.elem_type}[{len(self.data)}]>")


class PointerValue:
    """A C pointer: base buffer plus element offset.

    Pointer arithmetic produces new PointerValues over the same base, so
    overlap checks in the alias analysis are exact.
    """

    __slots__ = ("array", "offset")

    def __init__(self, array: ArrayValue, offset: int = 0):
        self.array = array
        self.offset = offset

    def add(self, delta: int) -> "PointerValue":
        return PointerValue(self.array, self.offset + int(delta))

    def load(self, index: int = 0) -> Scalar:
        return self.array.data[self.offset + index]

    def store(self, index: int, value: Scalar) -> Scalar:
        coerced = self.array.coerce(value)
        self.array.data[self.offset + index] = coerced
        return coerced

    def extent(self) -> int:
        """Elements reachable from this pointer to the end of the buffer."""
        return len(self.array.data) - self.offset

    def overlaps(self, other: "PointerValue") -> bool:
        """True when the two pointers can reach a common element."""
        if self.array is not other.array:
            return False
        lo1, hi1 = self.offset, len(self.array.data)
        lo2, hi2 = other.offset, len(other.array.data)
        return max(lo1, lo2) < min(hi1, hi2)

    def __repr__(self):
        return f"<Pointer {self.array.name or '?'}+{self.offset}>"


Value = Union[Scalar, PointerValue, ArrayValue, None]


def is_float_value(value: Value) -> bool:
    return isinstance(value, float)


def truthy(value: Value) -> bool:
    if isinstance(value, (int, float, bool)):
        return bool(value)
    if isinstance(value, PointerValue):
        return True
    if value is None:
        return False
    raise TypeError(f"value {value!r} has no truth value")
