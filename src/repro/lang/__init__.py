"""Execution substrate for UHL programs.

The paper's dynamic design-flow tasks (hotspot detection, trip-count
analysis, data-movement analysis, pointer alias analysis -- the rows
flagged with the "requires program execution" marker in Fig. 3/4) run
instrumented native binaries.  Here those tasks run the application
under a tree-walking interpreter with a virtual clock and hardware-
independent event counters; the emitted :class:`ExecReport` carries the
same facts a timer/counter-instrumented native run would produce.
"""

from repro.lang.interpreter import ExecLimitExceeded, Interpreter, RuntimeFault, Workload
from repro.lang.profiler import ExecReport, LoopProfile
from repro.lang.values import ArrayValue, PointerValue

__all__ = [
    "Interpreter",
    "Workload",
    "ExecReport",
    "LoopProfile",
    "ArrayValue",
    "PointerValue",
    "RuntimeFault",
    "ExecLimitExceeded",
]
