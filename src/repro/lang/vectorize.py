"""Numpy fast path for recognized affine inner loops.

``try_vectorize`` inspects a ``for`` loop at compile time and, for a
narrow canonical shape, builds a *plan*: a callable the compiled loop
driver invokes once on loop entry.  The plan either executes the whole
loop as a handful of numpy array operations and returns the iteration
count it covered, or returns 0 and the closure-compiled loop runs
normally.

Recognized shape::

    for (int i = S; i < E; i += K)        # also <=, i++, ++i
        a[c*i + d] OP= <expr>;            # OP in  =  +=  -=  *=  /=

where ``a`` is a float-typed array, the index is affine in ``i`` with a
positive literal coefficient, and ``<expr>`` is built from float/int
literals, loop-invariant scalars, ``i`` itself, affine loads from
float arrays, ``+ - * /``, unary minus, IEEE-exact one-argument math
builtins (``sqrt``/``fabs``/``floor`` families) and at most one
``rand01()`` call.

Exactness is non-negotiable: the plan must be observationally identical
to running the loop iteration by iteration.  Three mechanisms ensure it:

- the per-iteration statement cost is *harvested* from the compiler
  itself (the statement expression is recompiled under a fresh cost
  vector), so flushed counters match the closure path bit for bit;
- the plan is transactional -- every check (bounds, aliasing,
  zero divisors, non-int induction values) happens before any state is
  mutated, and any failure falls back to the normal loop;
- only operations where numpy float64 agrees exactly with Python float
  are vectorized (``+ - *``, division with a zero-free divisor,
  correctly-rounded ``sqrt``, ``fabs``, ``floor``).

Set ``REPRO_FASTPATH=0`` to disable recognition entirely.
"""

from __future__ import annotations

import os

try:
    import numpy as _np
except Exception:                                    # pragma: no cover
    _np = None

from repro.lang.builtins import LCG, MATH_BUILTINS
from repro.lang.values import ArrayValue, PointerValue
from repro.meta.ast_nodes import (
    Assign, BinaryOp, Call, Comment, CompoundStmt, DeclStmt, ExprStmt,
    FloatLit, ForStmt, Ident, Index, IntLit, NullStmt, UnaryOp,
)

_FASTPATH_MIN_TRIPS = 16

# one-argument builtins where numpy is bit-identical to the interpreter's
# (``_safe``-wrapped) math implementation for every float input
_NP_FUNCS = {}
if _np is not None:
    _NP_FUNCS = {
        "sqrt": _np.sqrt, "sqrtf": _np.sqrt,
        "fabs": _np.abs, "fabsf": _np.abs,
        "floor": _np.floor, "floorf": _np.floor,
    }


class _Reject(Exception):
    """Compile-time: the loop does not match the canonical shape."""


class _Abort(Exception):
    """Plan-time: a runtime check failed before any mutation."""


K_INT = K_FLOAT = K_PTR_F = None     # bound late to avoid a cycle


def _bind_kinds():
    global K_INT, K_FLOAT, K_PTR_F
    if K_INT is None:
        from repro.lang import compiler as _c
        K_INT, K_FLOAT, K_PTR_F = _c.K_INT, _c.K_FLOAT, _c.K_PTR_F


def enabled() -> bool:
    return (_np is not None
            and os.environ.get("REPRO_FASTPATH", "1") != "0")


def try_vectorize(fc, s: ForStmt):
    """A plan ``(rt, frame, counter) -> trips_done`` or None."""
    if not enabled():
        return None
    _bind_kinds()
    try:
        return _build_plan(fc, s)
    except _Reject:
        return None


# -------------------------------------------------------------------------
# Recognition
# -------------------------------------------------------------------------
def _induction_name(init) -> str:
    if isinstance(init, DeclStmt) and len(init.decls) == 1:
        var = init.decls[0]
        if (not var.is_array and not var.ctype.is_pointer
                and not var.ctype.is_floating):
            return var.name
    if (isinstance(init, ExprStmt) and isinstance(init.expr, Assign)
            and init.expr.op == "=" and isinstance(init.expr.target, Ident)):
        return init.expr.target.name
    raise _Reject


def _slot_getter(fc, name: str, want_kind):
    res = fc.lookup(name)
    if res is None or res[2] is not want_kind:
        raise _Reject
    where, slot = res[0], res[1]
    if where == "l":
        return lambda rt, frame: frame[slot], slot
    return lambda rt, frame: rt.globals[slot], None


def _affine(fc, e, ivar: str):
    """``(coef, invariant_getter)`` with index == coef*i + invariant."""
    if isinstance(e, IntLit):
        v = e.value
        return 0, (lambda rt, frame: v)
    if isinstance(e, Ident):
        if e.name == ivar:
            return 1, (lambda rt, frame: 0)
        getter, _ = _slot_getter(fc, e.name, K_INT)
        return 0, getter
    if isinstance(e, BinaryOp):
        if e.op in ("+", "-"):
            lc, lo = _affine(fc, e.lhs, ivar)
            rc, ro = _affine(fc, e.rhs, ivar)
            if e.op == "+":
                return lc + rc, (lambda rt, frame:
                                 lo(rt, frame) + ro(rt, frame))
            return lc - rc, (lambda rt, frame:
                             lo(rt, frame) - ro(rt, frame))
        if e.op == "*":
            if isinstance(e.lhs, IntLit):
                m, sub = e.lhs.value, e.rhs
            elif isinstance(e.rhs, IntLit):
                m, sub = e.rhs.value, e.lhs
            else:
                raise _Reject
            c, o = _affine(fc, sub, ivar)
            return c * m, (lambda rt, frame: o(rt, frame) * m)
    raise _Reject


def _ref(fc, e: Index, ivar: str, refs):
    """Register an affine load/store site; returns its index in refs."""
    if not isinstance(e.base, Ident):
        raise _Reject
    getter, _ = _slot_getter(fc, e.base.name, K_PTR_F)
    coef, off = _affine(fc, e.index, ivar)
    if coef < 0:
        raise _Reject
    refs.append((getter, coef, off))
    return len(refs) - 1


def _value(fc, e, ivar: str, refs, state):
    """``(eval(env) -> vec_or_scalar, is_float)``; registers loads in
    left-to-right depth-first (== interpreter evaluation) order."""
    if isinstance(e, FloatLit):
        v = e.value
        return (lambda env: v), True
    if isinstance(e, IntLit):
        v = e.value
        return (lambda env: v), False
    if isinstance(e, Ident):
        res = fc.lookup(e.name)
        if res is None:
            raise _Reject
        if res[2] is K_INT:
            if res[0] == "l" and res[1] == state.get("islot"):
                return (lambda env: env[2]), False       # i itself
            getter, _ = _slot_getter(fc, e.name, K_INT)
            return (lambda env: getter(env[0], env[1])), False
        if res[2] is K_FLOAT:
            getter, _ = _slot_getter(fc, e.name, K_FLOAT)
            return (lambda env: getter(env[0], env[1])), True
        raise _Reject
    if isinstance(e, Index):
        k = _ref(fc, e, ivar, refs)
        return (lambda env: env[3][k]), True
    if isinstance(e, UnaryOp) and e.op == "-" and e.prefix:
        ev, isf = _value(fc, e.operand, ivar, refs, state)
        if not isf:
            raise _Reject
        return (lambda env: -ev(env)), True
    if isinstance(e, BinaryOp) and e.op in ("+", "-", "*", "/"):
        lev, lf = _value(fc, e.lhs, ivar, refs, state)
        rev, rf = _value(fc, e.rhs, ivar, refs, state)
        if not (lf or rf):
            raise _Reject                 # int x int: C int semantics
        if e.op == "+":
            return (lambda env: lev(env) + rev(env)), True
        if e.op == "-":
            return (lambda env: lev(env) - rev(env)), True
        if e.op == "*":
            return (lambda env: lev(env) * rev(env)), True

        def div(env):
            lhs = lev(env)
            rhs = rev(env)
            if _np.any(_np.asarray(rhs) == 0.0):
                raise _Abort              # interpreter has signed-inf rules
            return lhs / rhs
        return div, True
    if isinstance(e, Call):
        if e.name == "rand01" and not e.args:
            if state.get("rand"):
                raise _Reject             # draw order: one per iteration
            state["rand"] = True
            return (lambda env: env[4]), True
        fn = _NP_FUNCS.get(e.name)
        if fn is not None and len(e.args) == 1:
            ev, isf = _value(fc, e.args[0], ivar, refs, state)
            if not isf:
                raise _Reject
            return (lambda env: fn(ev(env))), True
    raise _Reject


def _single_assign(body):
    stmts = [body]
    if isinstance(body, CompoundStmt):
        stmts = [st for st in body.stmts
                 if not isinstance(st, (Comment, NullStmt))]
    if (len(stmts) == 1 and isinstance(stmts[0], ExprStmt)
            and isinstance(stmts[0].expr, Assign)):
        return stmts[0].expr
    raise _Reject


def _build_plan(fc, s: ForStmt):
    if s.init is None or s.cond is None or s.inc is None:
        raise _Reject
    ivar = _induction_name(s.init)
    res = fc.lookup(ivar)
    if res is None or res[0] != "l" or res[2] is not K_INT:
        raise _Reject
    islot = res[1]

    cond = s.cond
    if (not isinstance(cond, BinaryOp) or cond.op not in ("<", "<=")
            or not isinstance(cond.lhs, Ident) or cond.lhs.name != ivar):
        raise _Reject
    inclusive = cond.op == "<="
    if isinstance(cond.rhs, IntLit):
        ev = cond.rhs.value
        limit_get = lambda rt, frame: ev                 # noqa: E731
    elif isinstance(cond.rhs, Ident) and cond.rhs.name != ivar:
        limit_get, _ = _slot_getter(fc, cond.rhs.name, K_INT)
    else:
        raise _Reject

    inc = s.inc
    if (isinstance(inc, UnaryOp) and inc.op == "++"
            and isinstance(inc.operand, Ident)
            and inc.operand.name == ivar):
        step = 1
    elif (isinstance(inc, Assign) and inc.op == "+="
            and isinstance(inc.target, Ident) and inc.target.name == ivar
            and isinstance(inc.value, IntLit) and inc.value.value >= 1):
        step = inc.value.value
    else:
        raise _Reject

    assign = _single_assign(s.body)
    if not isinstance(assign.target, Index):
        raise _Reject
    op = assign.op
    refs = []
    wref = _ref(fc, assign.target, ivar, refs)
    wgetter, wcoef, woff = refs.pop(wref)
    if wcoef < 1:
        raise _Reject
    state = {"islot": islot}
    val_ev, _ = _value(fc, assign.value, ivar, refs, state)
    has_rand = bool(state.get("rand"))

    # harvest the statement's exact static cost from the compiler itself:
    # recompiling the assignment under a fresh cost vector reproduces
    # precisely what the closure path flushes per execution
    saved = fc.cost
    fc.cost = [0, 0, 0, 0, 0, 0]
    fc.expr(assign)
    mul_flush = _make_mul_flush(fc.cost)
    fc.cost = saved

    return _make_plan(islot, limit_get, inclusive, step, wgetter, wcoef,
                      woff, op, refs, val_ev, has_rand, mul_flush)


def _make_mul_flush(cost):
    from repro.lang import compiler as _c
    return _c._make_mul_flush(cost)


# -------------------------------------------------------------------------
# The runtime plan
# -------------------------------------------------------------------------
def _as_pointer(value):
    if value.__class__ is PointerValue:
        return value
    if value.__class__ is ArrayValue:
        return PointerValue(value, 0)
    raise _Abort


def _resolve(getter, coef, off, rt, frame, i0, step, trips):
    """``(array, start, stride)`` for one ref, bounds-checked."""
    ptr = _as_pointer(getter(rt, frame))
    base = off(rt, frame)
    if not isinstance(base, int):
        raise _Abort
    start = ptr.offset + coef * i0 + base
    stride = coef * step
    n = len(ptr.array.data)
    last = start + stride * (trips - 1)
    if start < 0 or last < 0 or start >= n or last >= n:
        raise _Abort
    return ptr.array, start, stride


def _rand_states(rt, trips):
    mult, incr, mask = LCG.MULT, LCG.INC, LCG.MASK
    state = rt.rng.state
    hi = []
    for _ in range(trips):
        state = (state * mult + incr) & mask
        hi.append(state >> 11)
    return state, _np.array(hi, dtype=_np.float64) / float(1 << 53)


def _make_plan(islot, limit_get, inclusive, step, wgetter, wcoef, woff,
               op, refs, val_ev, has_rand, mul_flush):
    def plan(rt, frame, counter):
        i0 = frame[islot]
        if i0.__class__ is not int:
            return 0
        limit = limit_get(rt, frame)
        if limit.__class__ is not int:
            return 0
        span = limit - i0 + (1 if inclusive else 0)
        if span <= 0:
            return 0
        trips = -(-span // step)
        if trips < _FASTPATH_MIN_TRIPS:
            return 0
        try:
            warr, wstart, wstride = _resolve(
                wgetter, wcoef, woff, rt, frame, i0, step, trips)
            loads = []
            sites = []
            for getter, coef, off in refs:
                arr, start, stride = _resolve(
                    getter, coef, off, rt, frame, i0, step, trips)
                # a read that is not lane-aligned with the write would
                # carry a dependency across iterations: fall back
                if arr.array_id == warr.array_id and \
                        (start, stride) != (wstart, wstride):
                    raise _Abort
                sites.append(arr)
                if stride == 0:
                    loads.append(arr.data[start])
                else:
                    loads.append(_np.asarray(
                        arr.data[start:start + stride * trips:stride],
                        dtype=_np.float64))
            rng_state = rand_vec = None
            if has_rand:
                rng_state, rand_vec = _rand_states(rt, trips)
            old = None
            if op != "=":
                old = _np.asarray(
                    warr.data[wstart:wstart + wstride * trips:wstride],
                    dtype=_np.float64)
            ivec = _np.arange(i0, i0 + step * trips, step,
                              dtype=_np.float64)
            with _np.errstate(all="ignore"):
                env = (rt, frame, ivec, loads, rand_vec)
                out = val_ev(env)
                if op == "+=":
                    out = old + out
                elif op == "-=":
                    out = old - out
                elif op == "*=":
                    out = old * out
                elif op == "/=":
                    if _np.any(_np.asarray(out) == 0.0):
                        raise _Abort
                    out = old / out
            if _np.isscalar(out) or getattr(out, "ndim", 1) == 0:
                out = _np.full(trips, float(out))
        except (_Abort, ArithmeticError):
            return 0
        # ---- commit phase: no fallible work below this line ----------
        warr.data[wstart:wstart + wstride * trips:wstride] = out.tolist()
        frame[islot] = i0 + step * trips
        if has_rand:
            rt.rng.state = rng_state
        mul_flush(counter, trips)
        elem = warr.elem_size
        # access accounting in interpreter order: compound target load,
        # value loads left to right, then the store
        seq = []
        if op != "=":
            seq.append((warr, False))
        seq.extend((arr, False) for arr in sites)
        seq.append((warr, True))
        for arr, write in seq:
            if arr.is_local:
                continue
            if write:
                counter.bytes_written += trips * elem
            else:
                counter.bytes_read += trips * arr.elem_size
            for records in rt.frame_arrays:
                rec = records.get(arr.array_id)
                if rec is None:
                    continue
                if write:
                    rec.writes += trips
                else:
                    if rec.writes == 0:
                        rec.read_before_write = True
                    rec.reads += trips
        return trips
    return plan
