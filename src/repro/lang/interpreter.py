"""Tree-walking interpreter for UHL programs.

Executes a :class:`~repro.meta.ast_nodes.TranslationUnit` against a
:class:`Workload`, advancing the virtual clock and filling an
:class:`~repro.lang.profiler.ExecReport`.  This is the ``exec(ast)`` of
Fig. 2 and the execution engine behind every dynamic design-flow task.

Semantics follow C for the supported subset: integer division truncates
toward zero, pointers are base+offset pairs with real aliasing, arrays
decay to pointers, and assignment applies the target's conversion.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.lang.builtins import (
    ARRAY_BUILTIN_TYPES, LCG, MATH_BUILTINS, SCALAR_WS_BUILTINS, is_builtin,
)
from repro.lang.profiler import (
    ArrayAccessRecord, Counter, ExecReport, PointerArgEvent,
)
from repro.lang.values import ArrayValue, PointerValue, Value, truthy
from repro.meta.ast_nodes import (
    Assign, BinaryOp, BoolLit, BreakStmt, Call, Cast, Comment, CompoundStmt,
    ContinueStmt, CType, DeclStmt, DoWhileStmt, Expr, ExprStmt, FloatLit,
    ForStmt, FunctionDecl, Ident, IfStmt, Index, IntLit, NullStmt, Pragma,
    RawStmt, ReturnStmt, Stmt, StringLit, Ternary, TranslationUnit, UnaryOp,
    VarDecl, WhileStmt,
)

DIV_FLOP_COST = 4  # an FP divide costs several multiply-equivalents


class RuntimeFault(Exception):
    """A UHL program error (bad index, unknown name, type misuse)."""


class ExecLimitExceeded(RuntimeFault):
    """The step budget ran out -- likely a runaway loop."""


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Value = None):
        self.value = value


# Control flow is exceptional but frequent: constructing a fresh exception
# (and its traceback) per loop iteration dominates tight-loop cost, so each
# Interpreter pre-allocates its three control-flow signals once per run.
# Per-instance (not module-level) because the service runs jobs on a thread
# pool: a shared _Return.value would race between concurrent runs.  Catch
# sites drop the traceback so re-raising never chains frames iteration over
# iteration.  (The compiled engine goes further and uses sentinel returns.)


class Workload:
    """Named scalars and buffers supplied to a program run.

    Programs fetch scalars with ``ws_int("n")`` / ``ws_double("dt")``
    and buffers with ``ws_array_double("pos", n)``.  Buffers are created
    on first request (zero-filled, or from ``arrays`` if provided) and
    cached, so re-requests and post-run inspection see the same data.
    """

    def __init__(self, scalars: Optional[Dict[str, Union[int, float]]] = None,
                 arrays: Optional[Dict[str, Sequence[float]]] = None,
                 seed: int = 42):
        self.scalars = dict(scalars or {})
        self._initial_arrays = {k: list(v) for k, v in (arrays or {}).items()}
        self.seed = seed
        self._buffers: Dict[str, ArrayValue] = {}

    def scalar(self, name: str) -> Union[int, float]:
        try:
            return self.scalars[name]
        except KeyError:
            raise RuntimeFault(f"workload has no scalar {name!r}") from None

    def buffer(self, name: str, size: int, elem_type: CType) -> ArrayValue:
        buf = self._buffers.get(name)
        if buf is not None:
            if len(buf) != size:
                raise RuntimeFault(
                    f"workload buffer {name!r} re-requested with size "
                    f"{size}, previously {len(buf)}")
            return buf
        init = self._initial_arrays.get(name)
        if init is not None:
            if len(init) != size:
                raise RuntimeFault(
                    f"workload buffer {name!r} has {len(init)} initial "
                    f"values but the program requested {size}")
            buf = ArrayValue.from_values(init, elem_type, name)
        else:
            buf = ArrayValue(size, elem_type, name)
        self._buffers[name] = buf
        return buf

    def result(self, name: str) -> List[Union[int, float]]:
        """Contents of a buffer after a run (for oracle comparisons)."""
        try:
            return self._buffers[name].to_list()
        except KeyError:
            raise RuntimeFault(f"program never requested buffer {name!r}") from None

    def reset_buffers(self) -> None:
        """Drop cached buffers so the next run re-derives them from the
        inputs (used when an aborted run may have left them mutated)."""
        self._buffers.clear()

    def fresh(self) -> "Workload":
        """A new workload with the same inputs and no cached buffers."""
        return Workload(self.scalars, self._initial_arrays, self.seed)


def _c_int_div(a: int, b: int) -> int:
    if b == 0:
        raise RuntimeFault("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_int_mod(a: int, b: int) -> int:
    return a - _c_int_div(a, b) * b


class Interpreter:
    """Evaluator with profiling hooks; one instance per program run."""

    DEFAULT_MAX_STEPS = 200_000_000

    def __init__(self, unit: TranslationUnit,
                 workload: Optional[Workload] = None):
        self.unit = unit
        self.workload = workload if workload is not None else Workload()
        self.report = ExecReport()
        self.rng = LCG(self.workload.seed)
        self.functions: Dict[str, FunctionDecl] = {
            fn.name: fn for fn in unit.functions() if fn.body is not None}
        self.globals: Dict[str, Value] = {}
        # scope stack of the *current frame*; frames swap the whole list
        self.scopes: List[Dict[str, Value]] = []
        # counters: [global, outer loop, ..., innermost loop]
        self.counter_stack: List[Counter] = [self.report.global_counter]
        # per-frame pointer-arg access records (kernel data-movement)
        self.frame_arrays: List[Dict[int, ArrayAccessRecord]] = []
        self._timer_starts: Dict[str, float] = {}
        self.max_steps = self.DEFAULT_MAX_STEPS
        self._steps = 0
        self._break = _Break()
        self._continue = _Continue()
        self._return = _Return()

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------
    def run(self, entry: str = "main", max_steps: Optional[int] = None,
            args: Sequence[Value] = ()) -> ExecReport:
        if max_steps is not None:
            self.max_steps = max_steps
        self._exec_globals()
        if entry not in self.functions:
            raise RuntimeFault(f"no entry function {entry!r}")
        self.report.return_value = self.call_function(
            self.functions[entry], list(args))
        self.report.steps = self._steps
        return self.report

    def _exec_globals(self) -> None:
        for decl in self.unit.decls:
            if isinstance(decl, DeclStmt):
                for var in decl.decls:
                    self.globals[var.name] = self._init_decl(var)

    # ------------------------------------------------------------------
    # Environment
    # ------------------------------------------------------------------
    def _lookup(self, name: str) -> Value:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        if name in self.globals:
            return self.globals[name]
        raise RuntimeFault(f"undefined variable {name!r}")

    def _assign_name(self, name: str, value: Value) -> None:
        for scope in reversed(self.scopes):
            if name in scope:
                scope[name] = value
                return
        if name in self.globals:
            self.globals[name] = value
            return
        raise RuntimeFault(f"assignment to undefined variable {name!r}")

    def _declare(self, name: str, value: Value) -> None:
        self.scopes[-1][name] = value

    # ------------------------------------------------------------------
    # Virtual clock
    # ------------------------------------------------------------------
    def _clock(self) -> float:
        """Current virtual time: the global counter plus every loop
        counter still in flight (their totals fold into the global
        counter only when the loops exit)."""
        return sum(counter.cycles() for counter in self.counter_stack)

    # ------------------------------------------------------------------
    # Step budget
    # ------------------------------------------------------------------
    def _step(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise ExecLimitExceeded(
                f"exceeded {self.max_steps} interpreter steps")

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------
    def call_function(self, fn: FunctionDecl, args: List[Value]) -> Value:
        if len(args) != len(fn.params):
            raise RuntimeFault(
                f"{fn.name}() takes {len(fn.params)} args, got {len(args)}")
        self.counter_stack[-1].calls += 1

        frame: Dict[str, Value] = {}
        records: Dict[int, ArrayAccessRecord] = {}
        ptr_args: List[Tuple[str, int, int, int]] = []
        for param, arg in zip(fn.params, args):
            if isinstance(arg, ArrayValue):
                arg = PointerValue(arg, 0)
            if isinstance(arg, PointerValue):
                if not param.ctype.is_pointer:
                    raise RuntimeFault(
                        f"{fn.name}(): passing pointer to scalar param "
                        f"{param.name!r}")
                records[arg.array.array_id] = ArrayAccessRecord(
                    param.name, arg.extent() * arg.array.elem_size,
                    arg.array.elem_size)
                ptr_args.append((param.name, arg.array.array_id,
                                 arg.offset, arg.extent()))
            elif param.ctype.is_pointer:
                raise RuntimeFault(
                    f"{fn.name}(): passing scalar to pointer param "
                    f"{param.name!r}")
            else:
                arg = self._convert(arg, param.ctype)
            frame[param.name] = arg

        if ptr_args and len(self.report.pointer_events) < 10_000:
            self.report.pointer_events.append(
                PointerArgEvent(fn.name, ptr_args))

        saved_scopes = self.scopes
        self.scopes = [frame]
        self.frame_arrays.append(records)
        try:
            self.exec_stmt(fn.body)
            result: Value = None
        except _Return as ret:
            ret.__traceback__ = None
            result = ret.value
        finally:
            self.scopes = saved_scopes
            self.frame_arrays.pop()
            self._merge_access_records(fn.name, records)
        return result

    def _merge_access_records(self, fn_name: str,
                              records: Dict[int, ArrayAccessRecord]) -> None:
        if not records:
            return
        merged = self.report.fn_array_access.setdefault(fn_name, {})
        for rec in records.values():
            into = merged.get(rec.name)
            if into is None:
                merged[rec.name] = rec
            else:
                into.reads += rec.reads
                into.writes += rec.writes
                into.read_before_write |= rec.read_before_write
                into.nbytes = max(into.nbytes, rec.nbytes)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def exec_stmt(self, stmt: Stmt) -> None:
        self._step()
        kind = type(stmt)
        if kind is ExprStmt:
            self.eval_expr(stmt.expr)
        elif kind is CompoundStmt:
            self.scopes.append({})
            try:
                for child in stmt.stmts:
                    self.exec_stmt(child)
            finally:
                self.scopes.pop()
        elif kind is DeclStmt:
            for var in stmt.decls:
                self._declare(var.name, self._init_decl(var))
        elif kind is ForStmt:
            self._exec_for(stmt)
        elif kind is IfStmt:
            self.counter_stack[-1].branches += 1
            if truthy(self.eval_expr(stmt.cond)):
                self.exec_stmt(stmt.then)
            elif stmt.els is not None:
                self.exec_stmt(stmt.els)
        elif kind is WhileStmt:
            self._exec_while(stmt)
        elif kind is DoWhileStmt:
            self._exec_do_while(stmt)
        elif kind is ReturnStmt:
            value = self.eval_expr(stmt.expr) if stmt.expr is not None else None
            self._return.value = value
            raise self._return
        elif kind is BreakStmt:
            raise self._break
        elif kind is ContinueStmt:
            raise self._continue
        elif kind in (NullStmt, Comment):
            pass
        elif kind is RawStmt:
            raise RuntimeFault(
                "generated target-specific code (RawStmt) is not "
                "interpretable; run the reference or kernel design instead")
        else:
            raise RuntimeFault(f"cannot execute {kind.__name__}")

    def _init_decl(self, var: VarDecl) -> Value:
        if var.is_array:
            size = self.eval_expr(var.array_size)
            if not isinstance(size, int):
                raise RuntimeFault(
                    f"array {var.name!r} size must be an integer")
            return ArrayValue(size, var.ctype, var.name, is_local=True)
        if var.init is not None:
            value = self.eval_expr(var.init)
            if var.ctype.is_pointer:
                if isinstance(value, ArrayValue):
                    return PointerValue(value, 0)
                if not isinstance(value, PointerValue):
                    raise RuntimeFault(
                        f"initialising pointer {var.name!r} with non-pointer")
                return value
            return self._convert(value, var.ctype)
        if var.ctype.is_pointer:
            return None  # uninitialised pointer
        return 0.0 if var.ctype.is_floating else 0

    # -- loops ----------------------------------------------------------
    def _push_loop(self, loop_id: int) -> Counter:
        counter = Counter()
        self.counter_stack.append(counter)
        return counter

    def _pop_loop(self, loop_id: int, counter: Counter, trips: int) -> None:
        self.counter_stack.pop()
        self.counter_stack[-1].add(counter)
        profile = self.report.loop(loop_id)
        profile.entries += 1
        profile.trip_counts.append(trips)
        profile.inclusive.add(counter)

    def _exec_for(self, stmt: ForStmt) -> None:
        self.scopes.append({})
        counter = self._push_loop(stmt.node_id)
        trips = 0
        try:
            if stmt.init is not None:
                self.exec_stmt(stmt.init)
            while True:
                if stmt.cond is not None:
                    counter.branches += 1
                    if not truthy(self.eval_expr(stmt.cond)):
                        break
                try:
                    self.exec_stmt(stmt.body)
                except _Continue as sig:
                    sig.__traceback__ = None
                except _Break as sig:
                    sig.__traceback__ = None
                    trips += 1
                    break
                trips += 1
                if stmt.inc is not None:
                    self.eval_expr(stmt.inc)
        finally:
            self._pop_loop(stmt.node_id, counter, trips)
            self.scopes.pop()

    def _exec_while(self, stmt: WhileStmt) -> None:
        counter = self._push_loop(stmt.node_id)
        trips = 0
        try:
            while True:
                counter.branches += 1
                if not truthy(self.eval_expr(stmt.cond)):
                    break
                try:
                    self.exec_stmt(stmt.body)
                except _Continue as sig:
                    sig.__traceback__ = None
                except _Break as sig:
                    sig.__traceback__ = None
                    trips += 1
                    break
                trips += 1
        finally:
            self._pop_loop(stmt.node_id, counter, trips)

    def _exec_do_while(self, stmt: DoWhileStmt) -> None:
        counter = self._push_loop(stmt.node_id)
        trips = 0
        try:
            while True:
                try:
                    self.exec_stmt(stmt.body)
                except _Continue as sig:
                    sig.__traceback__ = None
                except _Break as sig:
                    sig.__traceback__ = None
                    trips += 1
                    break
                trips += 1
                counter.branches += 1
                if not truthy(self.eval_expr(stmt.cond)):
                    break
        finally:
            self._pop_loop(stmt.node_id, counter, trips)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def eval_expr(self, expr: Expr) -> Value:
        self._step()
        kind = type(expr)
        if kind is IntLit:
            return expr.value
        if kind is FloatLit:
            return expr.value
        if kind is Ident:
            return self._lookup(expr.name)
        if kind is BinaryOp:
            return self._eval_binary(expr)
        if kind is Index:
            return self._eval_load(expr)
        if kind is Assign:
            return self._eval_assign(expr)
        if kind is Call:
            return self._eval_call(expr)
        if kind is UnaryOp:
            return self._eval_unary(expr)
        if kind is Ternary:
            self.counter_stack[-1].branches += 1
            if truthy(self.eval_expr(expr.cond)):
                return self.eval_expr(expr.then)
            return self.eval_expr(expr.els)
        if kind is Cast:
            return self._convert(self.eval_expr(expr.expr), expr.ctype)
        if kind is BoolLit:
            return 1 if expr.value else 0
        if kind is StringLit:
            return expr.value
        raise RuntimeFault(f"cannot evaluate {kind.__name__}")

    # -- arithmetic -------------------------------------------------------
    def _eval_binary(self, expr: BinaryOp) -> Value:
        op = expr.op
        if op == "&&":
            self.counter_stack[-1].branches += 1
            if not truthy(self.eval_expr(expr.lhs)):
                return 0
            return 1 if truthy(self.eval_expr(expr.rhs)) else 0
        if op == "||":
            self.counter_stack[-1].branches += 1
            if truthy(self.eval_expr(expr.lhs)):
                return 1
            return 1 if truthy(self.eval_expr(expr.rhs)) else 0
        if op == ",":
            self.eval_expr(expr.lhs)
            return self.eval_expr(expr.rhs)

        lhs = self.eval_expr(expr.lhs)
        rhs = self.eval_expr(expr.rhs)
        return self._apply_binary(op, lhs, rhs)

    def _apply_binary(self, op: str, lhs: Value, rhs: Value) -> Value:
        counter = self.counter_stack[-1]
        # pointer arithmetic
        if isinstance(lhs, (PointerValue, ArrayValue)) or isinstance(
                rhs, (PointerValue, ArrayValue)):
            return self._pointer_arith(op, lhs, rhs)

        is_float = isinstance(lhs, float) or isinstance(rhs, float)
        if op == "+":
            counter.flops += 1 if is_float else 0
            counter.int_ops += 0 if is_float else 1
            return lhs + rhs
        if op == "-":
            counter.flops += 1 if is_float else 0
            counter.int_ops += 0 if is_float else 1
            return lhs - rhs
        if op == "*":
            counter.flops += 1 if is_float else 0
            counter.int_ops += 0 if is_float else 1
            return lhs * rhs
        if op == "/":
            if is_float:
                counter.flops += DIV_FLOP_COST
                if rhs == 0:
                    return math.inf if lhs > 0 else (-math.inf if lhs < 0 else math.nan)
                return lhs / rhs
            counter.int_ops += 1
            return _c_int_div(lhs, rhs)
        if op == "%":
            counter.int_ops += 1
            if is_float:
                raise RuntimeFault("'%' requires integer operands")
            return _c_int_mod(lhs, rhs)
        if op in ("<", ">", "<=", ">=", "==", "!="):
            if is_float:
                counter.flops += 1
            else:
                counter.int_ops += 1
            result = {"<": lhs < rhs, ">": lhs > rhs, "<=": lhs <= rhs,
                      ">=": lhs >= rhs, "==": lhs == rhs, "!=": lhs != rhs}[op]
            return 1 if result else 0
        if op in ("&", "|", "^", "<<", ">>"):
            counter.int_ops += 1
            if isinstance(lhs, float) or isinstance(rhs, float):
                raise RuntimeFault(f"bitwise {op!r} requires integers")
            return {"&": lhs & rhs, "|": lhs | rhs, "^": lhs ^ rhs,
                    "<<": lhs << rhs, ">>": lhs >> rhs}[op]
        raise RuntimeFault(f"unsupported binary operator {op!r}")

    def _pointer_arith(self, op: str, lhs: Value, rhs: Value) -> Value:
        if isinstance(lhs, ArrayValue):
            lhs = PointerValue(lhs, 0)
        if isinstance(rhs, ArrayValue):
            rhs = PointerValue(rhs, 0)
        self.counter_stack[-1].int_ops += 1
        if op == "+" and isinstance(lhs, PointerValue) and isinstance(rhs, int):
            return lhs.add(rhs)
        if op == "+" and isinstance(rhs, PointerValue) and isinstance(lhs, int):
            return rhs.add(lhs)
        if op == "-" and isinstance(lhs, PointerValue) and isinstance(rhs, int):
            return lhs.add(-rhs)
        if (op == "-" and isinstance(lhs, PointerValue)
                and isinstance(rhs, PointerValue)):
            if lhs.array is not rhs.array:
                raise RuntimeFault("subtracting pointers into different buffers")
            return lhs.offset - rhs.offset
        if op in ("==", "!=") and isinstance(lhs, PointerValue) \
                and isinstance(rhs, PointerValue):
            same = lhs.array is rhs.array and lhs.offset == rhs.offset
            return int(same if op == "==" else not same)
        raise RuntimeFault(f"unsupported pointer operation {op!r}")

    def _eval_unary(self, expr: UnaryOp) -> Value:
        op = expr.op
        counter = self.counter_stack[-1]
        if op in ("++", "--"):
            return self._eval_incdec(expr)
        if op == "*":
            ptr = self.eval_expr(expr.operand)
            if isinstance(ptr, ArrayValue):
                ptr = PointerValue(ptr, 0)
            if not isinstance(ptr, PointerValue):
                raise RuntimeFault("dereferencing a non-pointer")
            return self._load_ptr(ptr, 0)
        if op == "&":
            operand = expr.operand
            if isinstance(operand, Index):
                base, index = self._resolve_index(operand)
                return base.add(index)
            if isinstance(operand, Ident):
                value = self._lookup(operand.name)
                if isinstance(value, ArrayValue):
                    return PointerValue(value, 0)
            raise RuntimeFault("'&' is only supported on array elements")
        value = self.eval_expr(expr.operand)
        if op == "-":
            if isinstance(value, float):
                counter.flops += 1
            else:
                counter.int_ops += 1
            return -value
        if op == "!":
            counter.int_ops += 1
            return 0 if truthy(value) else 1
        if op == "~":
            counter.int_ops += 1
            return ~value
        raise RuntimeFault(f"unsupported unary operator {op!r}")

    def _eval_incdec(self, expr: UnaryOp) -> Value:
        delta = 1 if expr.op == "++" else -1
        target = expr.operand
        self.counter_stack[-1].int_ops += 1
        if isinstance(target, Ident):
            old = self._lookup(target.name)
            if isinstance(old, PointerValue):
                new: Value = old.add(delta)
            else:
                new = old + delta
            self._assign_name(target.name, new)
            return old if not expr.prefix else new
        if isinstance(target, Index):
            base, index = self._resolve_index(target)
            old = self._load_ptr(base, index)
            new = old + delta
            self._store_ptr(base, index, new)
            return old if not expr.prefix else new
        raise RuntimeFault("++/-- target must be a variable or element")

    # -- memory ------------------------------------------------------------
    def _resolve_index(self, expr: Index) -> Tuple[PointerValue, int]:
        base = self.eval_expr(expr.base)
        if isinstance(base, ArrayValue):
            base = PointerValue(base, 0)
        if not isinstance(base, PointerValue):
            raise RuntimeFault("subscript on a non-pointer value")
        index = self.eval_expr(expr.index)
        if not isinstance(index, int):
            raise RuntimeFault("array index must be an integer")
        return base, index

    def _record_access(self, array: ArrayValue, write: bool) -> None:
        array_id = array.array_id
        for records in self.frame_arrays:
            rec = records.get(array_id)
            if rec is not None:
                if write:
                    rec.writes += 1
                else:
                    rec.reads += 1
                    if rec.writes == 0:
                        rec.read_before_write = True

    def _load_ptr(self, ptr: PointerValue, index: int) -> Value:
        counter = self.counter_stack[-1]
        counter.mem_reads += 1
        if not ptr.array.is_local:
            counter.bytes_read += ptr.array.elem_size
            if self.frame_arrays:
                self._record_access(ptr.array, write=False)
        try:
            return ptr.load(index)
        except IndexError:
            raise RuntimeFault(
                f"out-of-bounds read at {ptr.array.name or 'buffer'}"
                f"[{ptr.offset + index}] (size {len(ptr.array)})") from None

    def _store_ptr(self, ptr: PointerValue, index: int, value: Value) -> Value:
        counter = self.counter_stack[-1]
        counter.mem_writes += 1
        if not ptr.array.is_local:
            counter.bytes_written += ptr.array.elem_size
            if self.frame_arrays:
                self._record_access(ptr.array, write=True)
        if ptr.offset + index < 0:
            raise RuntimeFault("negative buffer offset")
        try:
            return ptr.store(index, value)
        except IndexError:
            raise RuntimeFault(
                f"out-of-bounds write at {ptr.array.name or 'buffer'}"
                f"[{ptr.offset + index}] (size {len(ptr.array)})") from None

    def _eval_load(self, expr: Index) -> Value:
        base, index = self._resolve_index(expr)
        return self._load_ptr(base, index)

    def _eval_assign(self, expr: Assign) -> Value:
        target = expr.target
        if isinstance(target, Index):
            base, index = self._resolve_index(target)
            if expr.op == "=":
                value = self.eval_expr(expr.value)
            else:
                old = self._load_ptr(base, index)
                rhs = self.eval_expr(expr.value)
                value = self._apply_binary(expr.op[0], old, rhs)
            return self._store_ptr(base, index, value)
        if isinstance(target, Ident):
            if expr.op == "=":
                value = self.eval_expr(expr.value)
            else:
                old = self._lookup(target.name)
                rhs = self.eval_expr(expr.value)
                value = self._apply_binary(expr.op[0], old, rhs)
            # preserve the declared storage class of the current value
            current = self._lookup(target.name)
            if isinstance(current, float) and isinstance(value, int):
                value = float(value)
            elif isinstance(current, int) and not isinstance(current, bool) \
                    and isinstance(value, float):
                value = _trunc(value)
            self._assign_name(target.name, value)
            return value
        if isinstance(target, UnaryOp) and target.op == "*":
            ptr = self.eval_expr(target.operand)
            if isinstance(ptr, ArrayValue):
                ptr = PointerValue(ptr, 0)
            if not isinstance(ptr, PointerValue):
                raise RuntimeFault("assignment through a non-pointer")
            if expr.op == "=":
                value = self.eval_expr(expr.value)
            else:
                old = self._load_ptr(ptr, 0)
                rhs = self.eval_expr(expr.value)
                value = self._apply_binary(expr.op[0], old, rhs)
            return self._store_ptr(ptr, 0, value)
        raise RuntimeFault("unsupported assignment target")

    # -- calls ---------------------------------------------------------------
    def _eval_call(self, expr: Call) -> Value:
        name = expr.name
        fn = self.functions.get(name)
        if fn is not None:
            args = [self.eval_expr(a) for a in expr.args]
            return self.call_function(fn, args)
        if is_builtin(name):
            return self._eval_builtin(name, expr)
        raise RuntimeFault(f"call to unknown function {name!r}")

    def _eval_builtin(self, name: str, expr: Call) -> Value:
        counter = self.counter_stack[-1]
        spec = MATH_BUILTINS.get(name)
        if spec is not None:
            args = [self.eval_expr(a) for a in expr.args]
            counter.builtin_flops += spec.flop_cost
            result = spec.fn(*args)
            return float(result)

        if name in SCALAR_WS_BUILTINS:
            key = self._string_arg(expr, 0, name)
            value = self.workload.scalar(key)
            return int(value) if name == "ws_int" else float(value)

        elem_type = ARRAY_BUILTIN_TYPES.get(name)
        if elem_type is not None:
            key = self._string_arg(expr, 0, name)
            size = self.eval_expr(expr.args[1])
            if not isinstance(size, int):
                raise RuntimeFault(f"{name}() size must be an integer")
            return PointerValue(self.workload.buffer(key, size, elem_type), 0)

        if name == "rand01":
            counter.flops += 2
            return self.rng.next01()
        if name == "timer_start":
            key = self._string_arg(expr, 0, name)
            self._timer_starts[key] = self._clock()
            return 0
        if name == "timer_stop":
            key = self._string_arg(expr, 0, name)
            start = self._timer_starts.pop(key, None)
            if start is None:
                raise RuntimeFault(f"timer_stop({key!r}) without timer_start")
            elapsed = self._clock() - start
            self.report.timers[key] = self.report.timers.get(key, 0.0) + elapsed
            return 0
        if name == "printf":
            return self._eval_printf(expr)
        raise RuntimeFault(f"unhandled builtin {name!r}")

    def _string_arg(self, expr: Call, pos: int, name: str) -> str:
        if pos >= len(expr.args) or not isinstance(expr.args[pos], StringLit):
            raise RuntimeFault(
                f"{name}() argument {pos} must be a string literal")
        return expr.args[pos].value

    def _eval_printf(self, expr: Call) -> Value:
        if not expr.args or not isinstance(expr.args[0], StringLit):
            raise RuntimeFault("printf() needs a literal format string")
        fmt = expr.args[0].value.replace("\\n", "\n").replace("\\t", "\t")
        args = [self.eval_expr(a) for a in expr.args[1:]]
        try:
            text = fmt % tuple(args) if args else fmt
        except (TypeError, ValueError) as exc:
            raise RuntimeFault(f"printf format error: {exc}") from None
        self.report.stdout.append(text)
        return len(text)

    # -- conversions ------------------------------------------------------------
    def _convert(self, value: Value, ctype: CType) -> Value:
        if ctype.is_pointer:
            if isinstance(value, ArrayValue):
                return PointerValue(value, 0)
            if isinstance(value, PointerValue) or value is None:
                return value
            raise RuntimeFault(f"cannot convert {value!r} to {ctype}")
        if not isinstance(value, (int, float, bool)):
            raise RuntimeFault(f"cannot convert {value!r} to {ctype}")
        if ctype.is_floating:
            return float(value)
        if ctype.base == "bool":
            return 1 if value else 0
        return _trunc(value)


def _trunc(value: Union[int, float]) -> int:
    """C float->int conversion: truncate toward zero."""
    if isinstance(value, int):
        return value
    if math.isnan(value) or math.isinf(value):
        raise RuntimeFault(f"cannot convert {value} to int")
    return int(value)
