"""Batched design-space lowering: evaluate *spaces* as tensors.

DSE historically evaluated one candidate at a time -- clone the unit,
re-run the analysis, score, repeat.  This module turns a whole sweep
into a handful of numpy tensor operations: every design-space axis
(unroll factor, blocksize, thread count, device) becomes an array
axis, and per-candidate work collapses into broadcasting.

Three pieces:

- :class:`ParamGrid` -- named axes spanning the candidate space, with
  broadcast meshes (axis ``k`` of the grid is axis ``k`` of every
  result tensor) and a deterministic ``space_hash`` that keys shared
  lowering/profiling work for the whole space at once.
- :class:`BatchPlan` -- the lowering.  Metrics register either into
  the **affine core** (``const + sum(slope_k * mesh_k)``, evaluated as
  one tensor expression -- optionally through generated C via cffi
  under ``REPRO_NATIVE=1``), as arbitrary **vectorized** numpy
  callables, or into the **non-affine residue**: per-point closures,
  compiled once and cached by point key, invoked only for the grid
  entries the vector paths cannot express.
- :class:`SweepResult` -- the tensor view handed back to DSE tasks:
  per-metric tensors shaped like the grid, per-point extraction, and
  masked reductions (``argmin`` / ``first_true``) that replace the
  scalar early-exit predicates of the point-at-a-time loops.

Exactness is non-negotiable, exactly as for the loop fast path in
:mod:`repro.lang.vectorize`: a batched sweep must be element-wise
identical to running every point through the scalar path.  The affine
core only accepts coefficients whose products and sums stay exact in
float64 (the toolchain resource charges are all multiples of 0.5 well
below 2**53), and every vectorized model mirrors the scalar model's
operation order so IEEE-754 results match bit for bit.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

try:
    import numpy as _np
except Exception:                                    # pragma: no cover
    _np = None

#: magnitude past which float64 integer-grid arithmetic may round --
#: affine terms beyond it drop to the residue path
_EXACT_LIMIT = float(1 << 50)


def native_enabled() -> bool:
    """``REPRO_NATIVE=1`` requests the generated-C (cffi) core path."""
    return os.environ.get("REPRO_NATIVE", "0").strip() == "1"


# =====================================================================
# ParamGrid
# =====================================================================
class ParamGrid:
    """Named, ordered design-space axes.

    ``ParamGrid(factor=(2, 4, 8), device=("a10", "s10"))`` spans a
    3 x 2 candidate space; axis order is declaration order and fixes
    the tensor layout of every metric evaluated over the grid.
    """

    def __init__(self, **axes):
        if not axes:
            raise ValueError("a ParamGrid needs at least one axis")
        self.axes: Dict[str, tuple] = {}
        for name, values in axes.items():
            values = tuple(values)
            if not values:
                raise ValueError(f"axis {name!r} is empty")
            self.axes[name] = values

    # -- geometry ------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self.axes)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(len(v) for v in self.axes.values())

    @property
    def size(self) -> int:
        n = 1
        for extent in self.shape:
            n *= extent
        return n

    def values(self, name: str) -> tuple:
        return self.axes[name]

    def axis_index(self, name: str) -> int:
        return self.names.index(name)

    def mesh(self, name: str):
        """The axis values broadcast against the full grid shape.

        Numeric axes come back as a float64/int64 ndarray with singleton
        dimensions everywhere but the axis's own position -- the shape
        numpy broadcasting composes into full grid tensors.
        """
        if _np is None:
            raise RuntimeError("numpy unavailable: no batched lowering")
        k = self.axis_index(name)
        arr = _np.asarray(self.axes[name])
        shape = [1] * len(self.axes)
        shape[k] = len(self.axes[name])
        return arr.reshape(shape)

    # -- iteration -----------------------------------------------------
    def points(self) -> Iterator[Tuple[Tuple[int, ...], Dict[str, Any]]]:
        """Yield ``(index_tuple, {axis: value})`` in C order."""
        def rec(prefix: Tuple[int, ...], remaining: List[str]):
            if not remaining:
                yield prefix, {name: self.axes[name][prefix[i]]
                               for i, name in enumerate(self.names)}
                return
            head, tail = remaining[0], remaining[1:]
            for i in range(len(self.axes[head])):
                yield from rec(prefix + (i,), tail)
        yield from rec((), list(self.names))

    def point(self, index: Tuple[int, ...]) -> Dict[str, Any]:
        return {name: self.axes[name][index[i]]
                for i, name in enumerate(self.names)}

    # -- identity ------------------------------------------------------
    def space_hash(self, extra: str = "") -> str:
        """Deterministic digest of the whole candidate space.

        Extends the (source, workload) profile-cache identity of PR 2
        with the *space*: one hash keys shared lowering work for every
        point of the sweep at once.
        """
        spec = {name: [repr(v) for v in values]
                for name, values in self.axes.items()}
        blob = json.dumps({"axes": spec, "extra": extra}, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def __repr__(self):
        dims = ", ".join(f"{n}[{len(v)}]" for n, v in self.axes.items())
        return f"<ParamGrid {dims}>"


# =====================================================================
# SweepResult
# =====================================================================
class SweepResult:
    """Tensors over a :class:`ParamGrid`, one per metric.

    The batched replacement for a list of per-candidate reports: DSE
    tasks read whole-axis tensors and reduce them under masks instead
    of breaking out of a scalar loop.
    """

    def __init__(self, grid: ParamGrid,
                 tensors: Optional[Dict[str, Any]] = None):
        self.grid = grid
        self.tensors: Dict[str, Any] = {}
        for name, tensor in (tensors or {}).items():
            self.set(name, tensor)

    def set(self, name: str, tensor) -> None:
        arr = _np.broadcast_to(_np.asarray(tensor), self.grid.shape)
        self.tensors[name] = arr

    def tensor(self, name: str):
        return self.tensors[name]

    def __contains__(self, name: str) -> bool:
        return name in self.tensors

    # -- per-point extraction -----------------------------------------
    def point(self, index: Tuple[int, ...]) -> Dict[str, Any]:
        """Every metric (and axis value) at one grid index."""
        out = dict(self.grid.point(index))
        for name, tensor in self.tensors.items():
            value = tensor[index]
            out[name] = value.item() if hasattr(value, "item") else value
        return out

    # -- masked reductions --------------------------------------------
    def argmin(self, name: str, where=None) -> Optional[Tuple[int, ...]]:
        """Index of the first (C-order) minimum of ``name``.

        ``where`` masks candidates out; the first-occurrence rule makes
        the reduction bit-compatible with a scalar ``<``-keeps-first
        loop over the same points.  Returns None when the mask empties
        the grid or only non-finite values remain.
        """
        tensor = _np.asarray(self.tensors[name], dtype=_np.float64)
        if where is not None:
            mask = _np.broadcast_to(_np.asarray(where, dtype=bool),
                                    self.grid.shape)
            if not mask.any():
                return None
            tensor = _np.where(mask, tensor, _np.inf)
        if not _np.isfinite(tensor).any():
            return None
        flat = int(_np.argmin(tensor.reshape(-1)))
        return tuple(int(i) for i in
                     _np.unravel_index(flat, self.grid.shape))

    def argmax(self, name: str, where=None) -> Optional[Tuple[int, ...]]:
        tensor = _np.asarray(self.tensors[name], dtype=_np.float64)
        if where is not None:
            mask = _np.broadcast_to(_np.asarray(where, dtype=bool),
                                    self.grid.shape)
            if not mask.any():
                return None
            tensor = _np.where(mask, tensor, -_np.inf)
        if not _np.isfinite(tensor).any():
            return None
        flat = int(_np.argmax(tensor.reshape(-1)))
        return tuple(int(i) for i in
                     _np.unravel_index(flat, self.grid.shape))

    def first_true(self, mask) -> Optional[Tuple[int, ...]]:
        """First (C-order) index where ``mask`` holds -- the masked-
        reduction form of a scalar loop's early-exit ``break``."""
        mask = _np.broadcast_to(_np.asarray(mask, dtype=bool),
                                self.grid.shape)
        flat = mask.reshape(-1)
        hits = _np.flatnonzero(flat)
        if hits.size == 0:
            return None
        return tuple(int(i) for i in
                     _np.unravel_index(int(hits[0]), self.grid.shape))


# =====================================================================
# The native (generated C via cffi) affine evaluator
# =====================================================================
_native_lock = threading.Lock()
_native_fn = None          # compiled entry point, or False after failure

_NATIVE_SRC = """
void repro_affine_acc(double* out, const double* mesh,
                      double slope, long n) {
    for (long i = 0; i < n; i++)
        out[i] = out[i] + slope * mesh[i];
}
"""


def _native_affine():
    """The cffi-compiled affine accumulator, or None.

    Compiled once per process on first use; any failure (no cffi, no C
    compiler, sandboxed tmpdir) permanently falls back to numpy -- the
    native path is an accelerator, never a dependency.
    """
    global _native_fn
    with _native_lock:
        if _native_fn is not None:
            return _native_fn or None
        try:
            import tempfile

            from cffi import FFI

            ffi = FFI()
            ffi.cdef("void repro_affine_acc(double* out, "
                     "const double* mesh, double slope, long n);")
            tmp = tempfile.mkdtemp(prefix="repro-native-")
            ffi.set_source("_repro_batch_native", _NATIVE_SRC)
            lib_path = ffi.compile(tmpdir=tmp)
            lib = ffi.dlopen(lib_path)

            def accumulate(out, mesh, slope):
                n = out.size
                optr = ffi.cast("double*", out.ctypes.data)
                mptr = ffi.cast("double*", mesh.ctypes.data)
                lib.repro_affine_acc(optr, mptr, float(slope), n)

            _native_fn = accumulate
        except Exception:
            _native_fn = False
            return None
        return _native_fn


def native_available() -> bool:
    """True when the generated-C path compiled (forces the attempt)."""
    return _native_affine() is not None


# =====================================================================
# BatchPlan
# =====================================================================
class _Affine:
    __slots__ = ("const", "slopes")

    def __init__(self, const, slopes: Dict[str, Any]):
        self.const = const
        self.slopes = slopes


class BatchPlan:
    """Lowering of one sweep over a :class:`ParamGrid`.

    Metrics partition into:

    - ``affine(name, const, **slopes)`` -- the affine-vectorizable
      core, ``const + sum(slope_k * mesh(axis_k))`` as one broadcast
      tensor expression (or the cffi-generated C kernel under
      ``REPRO_NATIVE=1``);
    - ``vector(name, fn)`` -- any metric expressible as elementwise
      numpy over the grid meshes (``fn(grid) -> tensor``);
    - ``residue(name, fn, where=mask)`` -- the non-affine residue:
      ``fn(**point_params) -> value`` evaluated point-by-point, but
      only where ``mask`` holds, through a per-point cache so repeated
      evaluations of the same candidate are free.

    ``evaluate()`` runs core first, then vectors, then overlays the
    residue, and returns a :class:`SweepResult`.
    """

    #: process-wide residue-closure cache: space/point key -> value
    _residue_cache: Dict[str, Any] = {}
    _residue_lock = threading.Lock()

    def __init__(self, grid: ParamGrid, space_key: str = ""):
        if _np is None:
            raise RuntimeError("numpy unavailable: no batched lowering")
        self.grid = grid
        self.space_key = space_key or grid.space_hash()
        self._affine: List[Tuple[str, _Affine]] = []
        self._vectors: List[Tuple[str, Callable]] = []
        self._residues: List[Tuple[str, Callable, Any]] = []
        self.residue_points = 0   # filled by evaluate()

    # -- registration --------------------------------------------------
    def affine(self, name: str, const, **slopes) -> None:
        """Core metric ``const + sum(slope_k * mesh(axis_k))``.

        Raises ValueError when a coefficient is too large to evaluate
        exactly in float64 -- callers catch that and reroute the metric
        through :meth:`residue`.
        """
        for label, value in [("const", const)] + list(slopes.items()):
            arr = _np.asarray(value, dtype=_np.float64)
            if not _np.isfinite(arr).all() or \
                    float(_np.abs(arr).max(initial=0.0)) > _EXACT_LIMIT:
                raise ValueError(
                    f"affine coefficient {label!r} of {name!r} exceeds "
                    "the exact-float64 range")
        for axis in slopes:
            if axis not in self.grid.axes:
                raise KeyError(f"unknown axis {axis!r}")
        self._affine.append((name, _Affine(const, slopes)))

    def vector(self, name: str, fn: Callable[["ParamGrid"], Any]) -> None:
        self._vectors.append((name, fn))

    def residue(self, name: str, fn: Callable[..., Any],
                where=None) -> None:
        self._residues.append((name, fn, where))

    # -- evaluation ----------------------------------------------------
    def _eval_affine(self, spec: _Affine):
        out = _np.zeros(self.grid.shape, dtype=_np.float64)
        out += _np.asarray(spec.const, dtype=_np.float64)
        native = _native_affine() if native_enabled() else None
        for axis, slope in spec.slopes.items():
            mesh = _np.asarray(self.grid.mesh(axis), dtype=_np.float64)
            slope_arr = _np.asarray(slope, dtype=_np.float64)
            if native is not None and slope_arr.ndim == 0 \
                    and mesh.size == out.size:
                # the generated-C kernel handles the dense scalar-slope
                # case; anything fancier stays on numpy broadcasting
                full = _np.ascontiguousarray(
                    _np.broadcast_to(mesh, self.grid.shape),
                    dtype=_np.float64)
                native(out, full, float(slope_arr))
            else:
                out += slope_arr * mesh
        return out

    def _eval_residue(self, result: SweepResult, name: str,
                      fn: Callable, where) -> None:
        if where is None:
            mask = _np.ones(self.grid.shape, dtype=bool)
        else:
            mask = _np.broadcast_to(_np.asarray(where, dtype=bool),
                                    self.grid.shape)
        values: Dict[Tuple[int, ...], Any] = {}
        for index, params in self.grid.points():
            if not mask[index]:
                continue
            point_key = f"{self.space_key}:{name}:{index}"
            with self._residue_lock:
                hit = point_key in self._residue_cache
                value = self._residue_cache.get(point_key)
            if not hit:
                value = fn(**params)
                with self._residue_lock:
                    self._residue_cache[point_key] = value
            values[index] = value
            self.residue_points += 1
        # residues may yield non-numeric values (limiter names, status
        # strings): keep float64 when every value fits, else fall back
        # to an object-dtype tensor
        numeric = all(isinstance(v, (int, float, _np.number))
                      and not isinstance(v, bool)
                      for v in values.values())
        if numeric:
            if name in result.tensors:
                out = _np.array(result.tensors[name], dtype=_np.float64)
            else:
                out = _np.zeros(self.grid.shape, dtype=_np.float64)
        else:
            out = _np.empty(self.grid.shape, dtype=object)
            if name in result.tensors:
                out[...] = _np.asarray(result.tensors[name])
        for index, value in values.items():
            out[index] = value
        result.set(name, out)

    def evaluate(self) -> SweepResult:
        result = SweepResult(self.grid)
        for name, spec in self._affine:
            result.set(name, self._eval_affine(spec))
        for name, fn in self._vectors:
            result.set(name, fn(self.grid))
        self.residue_points = 0
        for name, fn, where in self._residues:
            self._eval_residue(result, name, fn, where)
        return result

    @classmethod
    def clear_residue_cache(cls) -> None:
        with cls._residue_lock:
            cls._residue_cache.clear()
