"""UHL -> Python closure compiler.

Lowers a :class:`~repro.meta.ast_nodes.TranslationUnit` to nested Python
closures -- one compiled callable per function / statement / expression,
with all dispatch (node kind, operator, scope resolution, static type
classification) performed once at compile time.  Running a compiled
program performs no per-node ``isinstance`` checks and no AST traversal.

Profiler accounting is batched: the static event cost of every statement
(flops, int ops, branches, builtin flops, memory accesses) is computed at
compile time and flushed into the live :class:`Counter` by a generated
flush function; loop condition/increment costs are multiplied by the
observed check/iteration counts on loop exit.  Only genuinely dynamic
events (bytes moved, access records, pointer-arithmetic ops, calls)
are counted at run time.

The compiled engine is observationally identical to the interpreter for
every well-typed program: same ExecReport counters, timers, loop
profiles, trip counts, pointer events, stdout and return value.  Two
escape hatches preserve identity for the rest:

- :class:`CompileUnsupported` (compile time): a construct the compiler
  does not model (malformed builtin call shapes, timer calls in
  non-statement position) -- the caller runs the interpreter instead.
- :class:`CompiledBailout` (run time): a value whose runtime type breaks
  the static kind assumptions (e.g. an ``int*`` passed to a ``double*``
  parameter) -- the caller discards the partial run and re-executes the
  same workload under the interpreter.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lang.builtins import (
    ARRAY_BUILTIN_TYPES, LCG, MATH_BUILTINS, SCALAR_WS_BUILTINS, is_builtin,
)
from repro.lang.interpreter import (
    DIV_FLOP_COST, ExecLimitExceeded, RuntimeFault, Workload,
    _c_int_div, _c_int_mod, _trunc,
)
from repro.lang.profiler import (
    ArrayAccessRecord, Counter, ExecReport, PointerArgEvent,
)
from repro.lang.values import ArrayValue, PointerValue, truthy
from repro.meta.ast_nodes import (
    Assign, BinaryOp, BoolLit, BreakStmt, Call, Cast, Comment, CompoundStmt,
    ContinueStmt, CType, DeclStmt, DoWhileStmt, ExprStmt, FloatLit, ForStmt,
    FunctionDecl, Ident, IfStmt, Index, IntLit, NullStmt, RawStmt, ReturnStmt,
    StringLit, Ternary, TranslationUnit, UnaryOp, WhileStmt,
)

DEFAULT_MAX_STEPS = 200_000_000
_MAX_EVENTS = 10_000


class CompileUnsupported(Exception):
    """The unit uses a construct the compiler does not model."""


class CompiledBailout(Exception):
    """A runtime value broke the compiler's static kind assumptions."""


# -------------------------------------------------------------------------
# Static kinds: compile-time classification of every expression's value.
# -------------------------------------------------------------------------
K_UNKNOWN, K_INT, K_FLOAT, K_STR, K_PTR_U, K_PTR_I, K_PTR_F = range(7)
_PTR_KINDS = (K_PTR_U, K_PTR_I, K_PTR_F)
_NUM_KINDS = (K_INT, K_FLOAT)


def _kind_of_ctype(ctype: CType) -> int:
    if ctype.is_pointer:
        if ctype.pointers > 1 or ctype.base == "void":
            return K_PTR_U
        return K_PTR_F if ctype.element_type().is_floating else K_PTR_I
    if ctype.is_floating:
        return K_FLOAT
    return K_INT          # int / long / bool


def _elem_kind(ptr_kind: int) -> int:
    if ptr_kind == K_PTR_F:
        return K_FLOAT
    if ptr_kind == K_PTR_I:
        return K_INT
    return K_UNKNOWN


# -------------------------------------------------------------------------
# Static cost vectors and generated flush functions.
# -------------------------------------------------------------------------
F, I, B, BF, MR, MW = range(6)
_COST_ATTRS = ("flops", "int_ops", "branches", "builtin_flops",
               "mem_reads", "mem_writes")


def _new_cost() -> List[int]:
    return [0, 0, 0, 0, 0, 0]


def _add_cost(into: List[int], cost: Sequence[int]) -> None:
    for i in range(6):
        into[i] += cost[i]


def _make_flush(cost: Sequence[int]):
    """A minimal ``flush(counter)`` adding this static cost, or None."""
    lines = [f"    c.{_COST_ATTRS[i]} += {cost[i]}"
             for i in range(6) if cost[i]]
    if not lines:
        return None
    src = "def _flush(c):\n" + "\n".join(lines) + "\n"
    ns: Dict[str, object] = {}
    exec(src, ns)                                    # noqa: S102
    return ns["_flush"]


def _make_mul_flush(cost: Sequence[int]):
    """A minimal ``flush(counter, n)`` adding n x this cost, or None."""
    lines = [f"    c.{_COST_ATTRS[i]} += {cost[i]} * n"
             for i in range(6) if cost[i]]
    if not lines:
        return None
    src = "def _mflush(c, n):\n" + "\n".join(lines) + "\n"
    ns: Dict[str, object] = {}
    exec(src, ns)                                    # noqa: S102
    return ns["_mflush"]


# -------------------------------------------------------------------------
# Runtime state (one per program run).
# -------------------------------------------------------------------------
_BRK = object()     # statement closures return one of these sentinels
_CNT = object()     # (or None) instead of raising control-flow exceptions
_RET = object()


class _Rt:
    """Mutable run state threaded through every compiled closure."""

    __slots__ = ("workload", "report", "rng", "counter", "counter_stack",
                 "frame_arrays", "timer_starts", "globals", "steps",
                 "max_steps", "ret")

    def __init__(self, workload: Workload, max_steps: int, nglobals: int):
        self.workload = workload
        self.report = ExecReport()
        self.rng = LCG(workload.seed)
        self.counter = self.report.global_counter
        self.counter_stack = [self.counter]
        self.frame_arrays: List[Dict[int, ArrayAccessRecord]] = []
        self.timer_starts: Dict[str, float] = {}
        self.globals: List[object] = [None] * nglobals
        self.steps = 0
        self.max_steps = max_steps
        self.ret = None


def _clock_rt(rt: _Rt) -> float:
    return sum(c.cycles() for c in rt.counter_stack)


def _check_steps(rt: _Rt) -> None:
    if rt.steps > rt.max_steps:
        raise ExecLimitExceeded(
            f"exceeded {rt.max_steps} interpreter steps")


# -------------------------------------------------------------------------
# Runtime helpers shared by generated closures.  These mirror the
# interpreter's memory / arithmetic semantics (including fault messages)
# exactly; static event counts are charged by the callers' flushes.
# -------------------------------------------------------------------------
def _record_access(rt: _Rt, array: ArrayValue, write: bool) -> None:
    array_id = array.array_id
    for records in rt.frame_arrays:
        rec = records.get(array_id)
        if rec is not None:
            if write:
                rec.writes += 1
            else:
                rec.reads += 1
                if rec.writes == 0:
                    rec.read_before_write = True


def _as_ptr(base) -> PointerValue:
    if isinstance(base, ArrayValue):
        return PointerValue(base, 0)
    raise RuntimeFault("subscript on a non-pointer value")


def _load_el(rt: _Rt, ptr: PointerValue, index: int):
    arr = ptr.array
    if not arr.is_local:
        rt.counter.bytes_read += arr.elem_size
        if rt.frame_arrays:
            _record_access(rt, arr, False)
    try:
        return arr.data[ptr.offset + index]
    except IndexError:
        raise RuntimeFault(
            f"out-of-bounds read at {arr.name or 'buffer'}"
            f"[{ptr.offset + index}] (size {len(arr)})") from None


def _store_el(rt: _Rt, ptr: PointerValue, index: int, value):
    arr = ptr.array
    if not arr.is_local:
        rt.counter.bytes_written += arr.elem_size
        if rt.frame_arrays:
            _record_access(rt, arr, True)
    if ptr.offset + index < 0:
        raise RuntimeFault("negative buffer offset")
    try:
        return ptr.store(index, value)
    except IndexError:
        raise RuntimeFault(
            f"out-of-bounds write at {arr.name or 'buffer'}"
            f"[{ptr.offset + index}] (size {len(arr)})") from None


def _deref_ptr(value) -> PointerValue:
    if isinstance(value, ArrayValue):
        return PointerValue(value, 0)
    if not isinstance(value, PointerValue):
        raise RuntimeFault("dereferencing a non-pointer")
    return value


def _pointer_arith_rt(rt: _Rt, op: str, lhs, rhs):
    if isinstance(lhs, ArrayValue):
        lhs = PointerValue(lhs, 0)
    if isinstance(rhs, ArrayValue):
        rhs = PointerValue(rhs, 0)
    rt.counter.int_ops += 1
    if op == "+" and isinstance(lhs, PointerValue) and isinstance(rhs, int):
        return lhs.add(rhs)
    if op == "+" and isinstance(rhs, PointerValue) and isinstance(lhs, int):
        return rhs.add(lhs)
    if op == "-" and isinstance(lhs, PointerValue) and isinstance(rhs, int):
        return lhs.add(-rhs)
    if (op == "-" and isinstance(lhs, PointerValue)
            and isinstance(rhs, PointerValue)):
        if lhs.array is not rhs.array:
            raise RuntimeFault("subtracting pointers into different buffers")
        return lhs.offset - rhs.offset
    if op in ("==", "!=") and isinstance(lhs, PointerValue) \
            and isinstance(rhs, PointerValue):
        same = lhs.array is rhs.array and lhs.offset == rhs.offset
        return int(same if op == "==" else not same)
    raise RuntimeFault(f"unsupported pointer operation {op!r}")


def _apply_binary_rt(rt: _Rt, op: str, lhs, rhs):
    """Dynamic binary op: used when static kinds are unknown/pointer.

    A faithful replica of ``Interpreter._apply_binary`` charging
    ``rt.counter`` at run time.
    """
    counter = rt.counter
    if isinstance(lhs, (PointerValue, ArrayValue)) or isinstance(
            rhs, (PointerValue, ArrayValue)):
        return _pointer_arith_rt(rt, op, lhs, rhs)

    is_float = isinstance(lhs, float) or isinstance(rhs, float)
    if op == "+":
        counter.flops += 1 if is_float else 0
        counter.int_ops += 0 if is_float else 1
        return lhs + rhs
    if op == "-":
        counter.flops += 1 if is_float else 0
        counter.int_ops += 0 if is_float else 1
        return lhs - rhs
    if op == "*":
        counter.flops += 1 if is_float else 0
        counter.int_ops += 0 if is_float else 1
        return lhs * rhs
    if op == "/":
        if is_float:
            counter.flops += DIV_FLOP_COST
            if rhs == 0:
                return math.inf if lhs > 0 else (
                    -math.inf if lhs < 0 else math.nan)
            return lhs / rhs
        counter.int_ops += 1
        return _c_int_div(lhs, rhs)
    if op == "%":
        counter.int_ops += 1
        if is_float:
            raise RuntimeFault("'%' requires integer operands")
        return _c_int_mod(lhs, rhs)
    if op in ("<", ">", "<=", ">=", "==", "!="):
        if is_float:
            counter.flops += 1
        else:
            counter.int_ops += 1
        result = {"<": lhs < rhs, ">": lhs > rhs, "<=": lhs <= rhs,
                  ">=": lhs >= rhs, "==": lhs == rhs, "!=": lhs != rhs}[op]
        return 1 if result else 0
    if op in ("&", "|", "^", "<<", ">>"):
        counter.int_ops += 1
        if isinstance(lhs, float) or isinstance(rhs, float):
            raise RuntimeFault(f"bitwise {op!r} requires integers")
        return {"&": lhs & rhs, "|": lhs | rhs, "^": lhs ^ rhs,
                "<<": lhs << rhs, ">>": lhs >> rhs}[op]
    raise RuntimeFault(f"unsupported binary operator {op!r}")


def _convert_val(value, ctype: CType):
    """Replica of ``Interpreter._convert`` (declared-type conversion)."""
    if ctype.is_pointer:
        if isinstance(value, ArrayValue):
            return PointerValue(value, 0)
        if isinstance(value, PointerValue) or value is None:
            return value
        raise RuntimeFault(f"cannot convert {value!r} to {ctype}")
    if not isinstance(value, (int, float, bool)):
        raise RuntimeFault(f"cannot convert {value!r} to {ctype}")
    if ctype.is_floating:
        return float(value)
    if ctype.base == "bool":
        return 1 if value else 0
    return _trunc(value)


def _merge_records(rt: _Rt, fn_name: str,
                   records: Dict[int, ArrayAccessRecord]) -> None:
    if not records:
        return
    merged = rt.report.fn_array_access.setdefault(fn_name, {})
    for rec in records.values():
        into = merged.get(rec.name)
        if into is None:
            merged[rec.name] = rec
        else:
            into.reads += rec.reads
            into.writes += rec.writes
            into.read_before_write |= rec.read_before_write
            into.nbytes = max(into.nbytes, rec.nbytes)


class _CFn:
    """A compiled function: registered first, body filled in phase 2 so
    recursive and forward calls can capture the object early."""

    __slots__ = ("name", "nparams", "param_info", "body", "frame_size")

    def __init__(self, name: str, nparams: int):
        self.name = name
        self.nparams = nparams
        self.param_info: List[Tuple[int, str, Optional[bool], str, CType]] = []
        self.body = None
        self.frame_size = 0


def _call_user(rt: _Rt, cfn: _CFn, args: list):
    if len(args) != cfn.nparams:
        raise RuntimeFault(
            f"{cfn.name}() takes {cfn.nparams} args, got {len(args)}")
    rt.counter.calls += 1
    rt.steps += 1
    if rt.steps > rt.max_steps:
        raise ExecLimitExceeded(
            f"exceeded {rt.max_steps} interpreter steps")
    frame: List[object] = [None] * cfn.frame_size
    records: Dict[int, ArrayAccessRecord] = {}
    ptr_args: List[Tuple[str, int, int, int]] = []
    for slot, mode, want, pname, ctype in cfn.param_info:
        arg = args[slot]
        if mode == "p":
            if isinstance(arg, ArrayValue):
                arg = PointerValue(arg, 0)
            if isinstance(arg, PointerValue):
                arr = arg.array
                if want is not None and arr.elem_type.is_floating is not want:
                    raise CompiledBailout(
                        f"{cfn.name}(): pointer element category mismatch "
                        f"for param {pname!r}")
                records[arr.array_id] = ArrayAccessRecord(
                    pname, arg.extent() * arr.elem_size, arr.elem_size)
                ptr_args.append((pname, arr.array_id, arg.offset,
                                 arg.extent()))
            else:
                raise RuntimeFault(
                    f"{cfn.name}(): passing scalar to pointer param "
                    f"{pname!r}")
        else:
            if isinstance(arg, (PointerValue, ArrayValue)):
                raise RuntimeFault(
                    f"{cfn.name}(): passing pointer to scalar param "
                    f"{pname!r}")
            if not isinstance(arg, (int, float, bool)):
                raise RuntimeFault(f"cannot convert {arg!r} to {ctype}")
            if mode == "f":
                arg = float(arg)
            elif mode == "b":
                arg = 1 if arg else 0
            else:
                arg = _trunc(arg)
        frame[slot] = arg
    if ptr_args and len(rt.report.pointer_events) < _MAX_EVENTS:
        rt.report.pointer_events.append(PointerArgEvent(cfn.name, ptr_args))
    rt.frame_arrays.append(records)
    try:
        r = cfn.body(rt, frame)
        if r is _RET:
            result = rt.ret
            rt.ret = None
        else:
            result = None
    finally:
        rt.frame_arrays.pop()
        _merge_records(rt, cfn.name, records)
    return result


# -------------------------------------------------------------------------
# Expression compiler.
# -------------------------------------------------------------------------
_TIMER_NAMES = ("timer_start", "timer_stop")


class _Fc:
    """Per-function compile context: lexical scopes map names to frame
    slots at compile time, so compiled code never searches scopes."""

    def __init__(self, comp: "_Compiler", safe: bool):
        self.comp = comp
        self.scopes: List[Dict[str, Tuple[int, int, CType]]] = []
        self.nslots = 0
        self.cost = _new_cost()
        self.safe = safe          # unit has timers: no batched accounting
        self.timer_ok = False     # current call node is a bare statement
        self.timer_expr_call = False  # stmt calls a timer fn mid-expr

    # -- scopes -----------------------------------------------------------
    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, kind: int, ctype: CType) -> int:
        slot = self.nslots
        self.nslots += 1
        self.scopes[-1][name] = (slot, kind, ctype)
        return slot

    def lookup(self, name: str):
        """('l'|'g', slot, kind, ctype) or None."""
        for scope in reversed(self.scopes):
            hit = scope.get(name)
            if hit is not None:
                return ("l",) + hit
        hit = self.comp.global_vars.get(name)
        if hit is not None:
            return ("g",) + hit
        return None

    # -- dispatch ---------------------------------------------------------
    def expr(self, e):
        kind = type(e)
        if kind is IntLit:
            v = e.value
            return (lambda rt, frame: v), K_INT
        if kind is FloatLit:
            v = e.value
            return (lambda rt, frame: v), K_FLOAT
        if kind is Ident:
            return self._ident(e.name)
        if kind is BinaryOp:
            return self._binary(e)
        if kind is Index:
            return self._load(e)
        if kind is Assign:
            return self._assign(e)
        if kind is Call:
            return self._call(e)
        if kind is UnaryOp:
            return self._unary(e)
        if kind is Ternary:
            return self._ternary(e)
        if kind is Cast:
            return self._cast(e)
        if kind is BoolLit:
            v = 1 if e.value else 0
            return (lambda rt, frame: v), K_INT
        if kind is StringLit:
            v = e.value
            return (lambda rt, frame: v), K_STR
        name = kind.__name__

        def bad(rt, frame):
            raise RuntimeFault(f"cannot evaluate {name}")
        return bad, K_UNKNOWN

    def sealed_expr(self, e):
        """Compile ``e`` so its static cost is flushed only if it runs
        (conditional subtrees: &&/|| RHS, ternary and if arms)."""
        saved = self.cost
        outer_flag = self.timer_expr_call
        self.timer_expr_call = False
        self.cost = _new_cost()
        cl, kind = self.expr(e)
        fl = _make_flush(self.cost)
        self.cost = saved
        if self.timer_expr_call and fl is not None:
            raise CompileUnsupported(
                "timer-bearing call inside a costed conditional subtree")
        self.timer_expr_call = outer_flag or self.timer_expr_call
        if fl is None:
            return cl, kind

        def run(rt, frame):
            fl(rt.counter)
            return cl(rt, frame)
        return run, kind

    # -- names ------------------------------------------------------------
    def _ident(self, name: str):
        res = self.lookup(name)
        if res is None:
            def cl(rt, frame):
                raise RuntimeFault(f"undefined variable {name!r}")
            return cl, K_UNKNOWN
        where, slot, kind, _ = res
        if where == "l":
            return (lambda rt, frame: frame[slot]), kind
        return (lambda rt, frame: rt.globals[slot]), kind

    # -- binary -----------------------------------------------------------
    def _binary(self, e: BinaryOp):
        op = e.op
        if op == "&&":
            self.cost[B] += 1
            lcl, _ = self.expr(e.lhs)
            rcl, _ = self.sealed_expr(e.rhs)

            def cl(rt, frame):
                if not truthy(lcl(rt, frame)):
                    return 0
                return 1 if truthy(rcl(rt, frame)) else 0
            return cl, K_INT
        if op == "||":
            self.cost[B] += 1
            lcl, _ = self.expr(e.lhs)
            rcl, _ = self.sealed_expr(e.rhs)

            def cl(rt, frame):
                if truthy(lcl(rt, frame)):
                    return 1
                return 1 if truthy(rcl(rt, frame)) else 0
            return cl, K_INT
        if op == ",":
            lcl, _ = self.expr(e.lhs)
            rcl, rk = self.expr(e.rhs)

            def cl(rt, frame):
                lcl(rt, frame)
                return rcl(rt, frame)
            return cl, rk

        lcl, lk = self.expr(e.lhs)
        rcl, rk = self.expr(e.rhs)
        if lk in _NUM_KINDS and rk in _NUM_KINDS:
            return self._static_binop(op, lcl, rcl, lk, rk)

        def cl(rt, frame):
            return _apply_binary_rt(rt, op, lcl(rt, frame), rcl(rt, frame))
        kind = K_INT if op in BinaryOp.COMPARE else K_UNKNOWN
        return cl, kind

    def _static_binop(self, op, lcl, rcl, lk, rk):
        cost = self.cost
        is_float = lk is K_FLOAT or rk is K_FLOAT
        if op in ("+", "-", "*"):
            cost[F if is_float else I] += 1
            if op == "+":
                def cl(rt, frame):
                    return lcl(rt, frame) + rcl(rt, frame)
            elif op == "-":
                def cl(rt, frame):
                    return lcl(rt, frame) - rcl(rt, frame)
            else:
                def cl(rt, frame):
                    return lcl(rt, frame) * rcl(rt, frame)
            return cl, (K_FLOAT if is_float else K_INT)
        if op == "/":
            if is_float:
                cost[F] += DIV_FLOP_COST

                def cl(rt, frame):
                    lhs = lcl(rt, frame)
                    rhs = rcl(rt, frame)
                    if rhs == 0:
                        return math.inf if lhs > 0 else (
                            -math.inf if lhs < 0 else math.nan)
                    return lhs / rhs
                return cl, K_FLOAT
            cost[I] += 1

            def cl(rt, frame):
                return _c_int_div(lcl(rt, frame), rcl(rt, frame))
            return cl, K_INT
        if op == "%":
            cost[I] += 1
            if is_float:
                def cl(rt, frame):
                    lcl(rt, frame)
                    rcl(rt, frame)
                    raise RuntimeFault("'%' requires integer operands")
                return cl, K_UNKNOWN

            def cl(rt, frame):
                return _c_int_mod(lcl(rt, frame), rcl(rt, frame))
            return cl, K_INT
        if op in BinaryOp.COMPARE:
            cost[F if is_float else I] += 1
            if op == "<":
                def cl(rt, frame):
                    return 1 if lcl(rt, frame) < rcl(rt, frame) else 0
            elif op == ">":
                def cl(rt, frame):
                    return 1 if lcl(rt, frame) > rcl(rt, frame) else 0
            elif op == "<=":
                def cl(rt, frame):
                    return 1 if lcl(rt, frame) <= rcl(rt, frame) else 0
            elif op == ">=":
                def cl(rt, frame):
                    return 1 if lcl(rt, frame) >= rcl(rt, frame) else 0
            elif op == "==":
                def cl(rt, frame):
                    return 1 if lcl(rt, frame) == rcl(rt, frame) else 0
            else:
                def cl(rt, frame):
                    return 1 if lcl(rt, frame) != rcl(rt, frame) else 0
            return cl, K_INT
        if op in BinaryOp.BITWISE:
            cost[I] += 1
            if is_float:
                def cl(rt, frame):
                    lcl(rt, frame)
                    rcl(rt, frame)
                    raise RuntimeFault(f"bitwise {op!r} requires integers")
                return cl, K_UNKNOWN
            fn = {"&": lambda a, b: a & b, "|": lambda a, b: a | b,
                  "^": lambda a, b: a ^ b, "<<": lambda a, b: a << b,
                  ">>": lambda a, b: a >> b}[op]

            def cl(rt, frame):
                return fn(lcl(rt, frame), rcl(rt, frame))
            return cl, K_INT

        def cl(rt, frame):
            lcl(rt, frame)
            rcl(rt, frame)
            raise RuntimeFault(f"unsupported binary operator {op!r}")
        return cl, K_UNKNOWN

    # -- memory -----------------------------------------------------------
    def _load(self, e: Index):
        bcl, bk = self.expr(e.base)
        icl, ik = self.expr(e.index)
        self.cost[MR] += 1
        check_int = ik is not K_INT

        def cl(rt, frame):
            base = bcl(rt, frame)
            if type(base) is not PointerValue:
                base = _as_ptr(base)
            idx = icl(rt, frame)
            if check_int and not isinstance(idx, int):
                raise RuntimeFault("array index must be an integer")
            return _load_el(rt, base, idx)
        return cl, (_elem_kind(bk) if bk in _PTR_KINDS else K_UNKNOWN)

    # -- ternary / cast ----------------------------------------------------
    def _ternary(self, e: Ternary):
        self.cost[B] += 1
        ccl, _ = self.expr(e.cond)
        tcl, tk = self.sealed_expr(e.then)
        ecl, ek = self.sealed_expr(e.els)

        def cl(rt, frame):
            if truthy(ccl(rt, frame)):
                return tcl(rt, frame)
            return ecl(rt, frame)
        return cl, (tk if tk == ek else K_UNKNOWN)

    def _cast(self, e: Cast):
        ocl, ok = self.expr(e.expr)
        ct = e.ctype
        kind = _kind_of_ctype(ct)
        if ct.is_pointer or ct.base == "bool":
            def cl(rt, frame):
                return _convert_val(ocl(rt, frame), ct)
            return cl, (K_INT if ct.base == "bool" else kind)
        if ct.is_floating:
            if ok is K_FLOAT:
                return ocl, K_FLOAT
            if ok is K_INT:
                def cl(rt, frame):
                    return float(ocl(rt, frame))
                return cl, K_FLOAT
        else:
            if ok is K_INT:
                return ocl, K_INT
            if ok is K_FLOAT:
                def cl(rt, frame):
                    return _trunc(ocl(rt, frame))
                return cl, K_INT

        def cl(rt, frame):
            return _convert_val(ocl(rt, frame), ct)
        return cl, kind

    # -- unary ------------------------------------------------------------
    def _unary(self, e: UnaryOp):
        op = e.op
        if op in ("++", "--"):
            return self._incdec(e)
        if op == "*":
            ocl, ok = self.expr(e.operand)
            self.cost[MR] += 1

            def cl(rt, frame):
                return _load_el(rt, _deref_ptr(ocl(rt, frame)), 0)
            return cl, (_elem_kind(ok) if ok in _PTR_KINDS else K_UNKNOWN)
        if op == "&":
            operand = e.operand
            if isinstance(operand, Index):
                bcl, bk = self.expr(operand.base)
                icl, ik = self.expr(operand.index)
                check_int = ik is not K_INT

                def cl(rt, frame):
                    base = bcl(rt, frame)
                    if type(base) is not PointerValue:
                        base = _as_ptr(base)
                    idx = icl(rt, frame)
                    if check_int and not isinstance(idx, int):
                        raise RuntimeFault("array index must be an integer")
                    return base.add(idx)
                return cl, (bk if bk in _PTR_KINDS else K_PTR_U)
            if isinstance(operand, Ident):
                vcl, vk = self._ident(operand.name)

                def cl(rt, frame):
                    value = vcl(rt, frame)
                    if isinstance(value, ArrayValue):
                        return PointerValue(value, 0)
                    raise RuntimeFault(
                        "'&' is only supported on array elements")
                return cl, (vk if vk in _PTR_KINDS else K_PTR_U)

            def cl(rt, frame):
                raise RuntimeFault("'&' is only supported on array elements")
            return cl, K_PTR_U

        ocl, ok = self.expr(e.operand)
        if op == "-":
            if ok is K_FLOAT:
                self.cost[F] += 1

                def cl(rt, frame):
                    return -ocl(rt, frame)
                return cl, K_FLOAT
            if ok is K_INT:
                self.cost[I] += 1

                def cl(rt, frame):
                    return -ocl(rt, frame)
                return cl, K_INT

            def cl(rt, frame):
                value = ocl(rt, frame)
                c = rt.counter
                if isinstance(value, float):
                    c.flops += 1
                else:
                    c.int_ops += 1
                return -value
            return cl, K_UNKNOWN
        if op == "!":
            self.cost[I] += 1

            def cl(rt, frame):
                return 0 if truthy(ocl(rt, frame)) else 1
            return cl, K_INT
        if op == "~":
            self.cost[I] += 1

            def cl(rt, frame):
                return ~ocl(rt, frame)
            return cl, K_INT

        def cl(rt, frame):
            ocl(rt, frame)
            raise RuntimeFault(f"unsupported unary operator {op!r}")
        return cl, K_UNKNOWN

    def _incdec(self, e: UnaryOp):
        delta = 1 if e.op == "++" else -1
        prefix = e.prefix
        target = e.operand
        self.cost[I] += 1
        if isinstance(target, Ident):
            res = self.lookup(target.name)
            if res is None:
                name = target.name

                def cl(rt, frame):
                    raise RuntimeFault(f"undefined variable {name!r}")
                return cl, K_UNKNOWN
            where, slot, kind, _ = res
            if where == "l":
                if kind in _NUM_KINDS:
                    def cl(rt, frame):
                        old = frame[slot]
                        new = old + delta
                        frame[slot] = new
                        return new if prefix else old
                else:
                    def cl(rt, frame):
                        old = frame[slot]
                        if isinstance(old, PointerValue):
                            new = old.add(delta)
                        else:
                            new = old + delta
                        frame[slot] = new
                        return new if prefix else old
            else:
                if kind in _NUM_KINDS:
                    def cl(rt, frame):
                        old = rt.globals[slot]
                        new = old + delta
                        rt.globals[slot] = new
                        return new if prefix else old
                else:
                    def cl(rt, frame):
                        old = rt.globals[slot]
                        if isinstance(old, PointerValue):
                            new = old.add(delta)
                        else:
                            new = old + delta
                        rt.globals[slot] = new
                        return new if prefix else old
            return cl, kind
        if isinstance(target, Index):
            bcl, bk = self.expr(target.base)
            icl, ik = self.expr(target.index)
            self.cost[MR] += 1
            self.cost[MW] += 1
            check_int = ik is not K_INT

            def cl(rt, frame):
                base = bcl(rt, frame)
                if type(base) is not PointerValue:
                    base = _as_ptr(base)
                idx = icl(rt, frame)
                if check_int and not isinstance(idx, int):
                    raise RuntimeFault("array index must be an integer")
                old = _load_el(rt, base, idx)
                new = old + delta
                _store_el(rt, base, idx, new)
                return new if prefix else old
            return cl, (_elem_kind(bk) if bk in _PTR_KINDS else K_UNKNOWN)

        def cl(rt, frame):
            raise RuntimeFault("++/-- target must be a variable or element")
        return cl, K_UNKNOWN

    # -- assignment --------------------------------------------------------
    def _numeric_apply(self, bop: str, is_float: bool):
        """Static compound-assign combiner; charges self.cost."""
        cost = self.cost
        if bop in ("+", "-", "*"):
            cost[F if is_float else I] += 1
            return {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
                    "*": lambda a, b: a * b}[bop]
        # bop == "/" (Assign.OPS only allows + - * /)
        if is_float:
            cost[F] += DIV_FLOP_COST

            def div(a, b):
                if b == 0:
                    return math.inf if a > 0 else (
                        -math.inf if a < 0 else math.nan)
                return a / b
            return div
        cost[I] += 1
        return _c_int_div

    def _assign(self, e: Assign):
        target = e.target
        if isinstance(target, Index):
            return self._assign_index(e, target)
        if isinstance(target, Ident):
            return self._assign_ident(e, target)
        if isinstance(target, UnaryOp) and target.op == "*":
            return self._assign_deref(e, target)

        def cl(rt, frame):
            raise RuntimeFault("unsupported assignment target")
        return cl, K_UNKNOWN

    def _assign_index(self, e: Assign, target: Index):
        bcl, bk = self.expr(target.base)
        icl, ik = self.expr(target.index)
        check_int = ik is not K_INT
        ek = _elem_kind(bk) if bk in _PTR_KINDS else K_UNKNOWN
        if e.op == "=":
            vcl, _ = self.expr(e.value)
            self.cost[MW] += 1

            def cl(rt, frame):
                base = bcl(rt, frame)
                if type(base) is not PointerValue:
                    base = _as_ptr(base)
                idx = icl(rt, frame)
                if check_int and not isinstance(idx, int):
                    raise RuntimeFault("array index must be an integer")
                return _store_el(rt, base, idx, vcl(rt, frame))
            return cl, ek
        bop = e.op[0]
        self.cost[MR] += 1
        rcl, rk = self.expr(e.value)
        self.cost[MW] += 1
        if ek in _NUM_KINDS and rk in _NUM_KINDS:
            apply = self._numeric_apply(bop, ek is K_FLOAT or rk is K_FLOAT)

            def cl(rt, frame):
                base = bcl(rt, frame)
                if type(base) is not PointerValue:
                    base = _as_ptr(base)
                idx = icl(rt, frame)
                if check_int and not isinstance(idx, int):
                    raise RuntimeFault("array index must be an integer")
                old = _load_el(rt, base, idx)
                return _store_el(rt, base, idx, apply(old, rcl(rt, frame)))
        else:
            def cl(rt, frame):
                base = bcl(rt, frame)
                if type(base) is not PointerValue:
                    base = _as_ptr(base)
                idx = icl(rt, frame)
                if check_int and not isinstance(idx, int):
                    raise RuntimeFault("array index must be an integer")
                old = _load_el(rt, base, idx)
                value = _apply_binary_rt(rt, bop, old, rcl(rt, frame))
                return _store_el(rt, base, idx, value)
        return cl, ek

    def _assign_ident(self, e: Assign, target: Ident):
        res = self.lookup(target.name)
        if res is None:
            vcl, _ = self.expr(e.value)
            name = target.name

            def cl(rt, frame):
                vcl(rt, frame)
                raise RuntimeFault(f"undefined variable {name!r}")
            return cl, K_UNKNOWN
        where, slot, tk, _ = res
        if e.op == "=":
            vcl, vk = self.expr(e.value)
        else:
            bop = e.op[0]
            rcl, rk = self.expr(e.value)
            getter = ((lambda rt, frame: frame[slot]) if where == "l"
                      else (lambda rt, frame: rt.globals[slot]))
            if tk in _NUM_KINDS and rk in _NUM_KINDS:
                apply = self._numeric_apply(
                    bop, tk is K_FLOAT or rk is K_FLOAT)

                def vcl(rt, frame):
                    return apply(getter(rt, frame), rcl(rt, frame))
                vk = K_FLOAT if (tk is K_FLOAT or rk is K_FLOAT) else K_INT
            else:
                def vcl(rt, frame):
                    return _apply_binary_rt(
                        rt, bop, getter(rt, frame), rcl(rt, frame))
                vk = K_UNKNOWN
        store = self._make_slot_store(where, slot, tk, vk, vcl)
        return store, tk

    def _make_slot_store(self, where, slot, tk, vk, vcl):
        """Storage-preserving assignment specialised on the slot's kind.

        Values whose runtime type falls outside the slot's static kind
        (e.g. a pointer assigned into an int variable) raise
        CompiledBailout: the interpreter would store them raw, breaking
        every static assumption downstream, so the engine re-runs the
        whole workload under the interpreter instead.
        """
        is_local = where == "l"
        if tk is K_FLOAT:
            if vk is K_FLOAT:
                conv = None
            elif vk is K_INT:
                conv = float
            else:
                def conv(v):
                    t = type(v)
                    if t is float:
                        return v
                    if t is int:
                        return float(v)
                    raise CompiledBailout(
                        f"non-numeric value in float slot: {v!r}")
        elif tk is K_INT:
            if vk is K_INT:
                conv = None
            elif vk is K_FLOAT:
                conv = _trunc
            else:
                def conv(v):
                    if isinstance(v, int):      # includes bool
                        return v
                    if isinstance(v, float):
                        return _trunc(v)
                    raise CompiledBailout(
                        f"non-numeric value in int slot: {v!r}")
        else:                                   # pointer slot: store raw
            def conv(v):
                if v is None or isinstance(v, (PointerValue, ArrayValue)):
                    return v
                raise CompiledBailout(
                    f"non-pointer value in pointer slot: {v!r}")
        if conv is None:
            if is_local:
                def cl(rt, frame):
                    value = vcl(rt, frame)
                    frame[slot] = value
                    return value
            else:
                def cl(rt, frame):
                    value = vcl(rt, frame)
                    rt.globals[slot] = value
                    return value
        else:
            if is_local:
                def cl(rt, frame):
                    value = conv(vcl(rt, frame))
                    frame[slot] = value
                    return value
            else:
                def cl(rt, frame):
                    value = conv(vcl(rt, frame))
                    rt.globals[slot] = value
                    return value
        return cl

    def _assign_deref(self, e: Assign, target: UnaryOp):
        pcl, pk = self.expr(target.operand)
        ek = _elem_kind(pk) if pk in _PTR_KINDS else K_UNKNOWN
        if e.op == "=":
            vcl, _ = self.expr(e.value)
            self.cost[MW] += 1

            def cl(rt, frame):
                ptr = pcl(rt, frame)
                if isinstance(ptr, ArrayValue):
                    ptr = PointerValue(ptr, 0)
                if not isinstance(ptr, PointerValue):
                    raise RuntimeFault("assignment through a non-pointer")
                return _store_el(rt, ptr, 0, vcl(rt, frame))
            return cl, ek
        bop = e.op[0]
        self.cost[MR] += 1
        rcl, rk = self.expr(e.value)
        self.cost[MW] += 1
        if ek in _NUM_KINDS and rk in _NUM_KINDS:
            apply = self._numeric_apply(bop, ek is K_FLOAT or rk is K_FLOAT)

            def cl(rt, frame):
                ptr = pcl(rt, frame)
                if isinstance(ptr, ArrayValue):
                    ptr = PointerValue(ptr, 0)
                if not isinstance(ptr, PointerValue):
                    raise RuntimeFault("assignment through a non-pointer")
                old = _load_el(rt, ptr, 0)
                return _store_el(rt, ptr, 0, apply(old, rcl(rt, frame)))
        else:
            def cl(rt, frame):
                ptr = pcl(rt, frame)
                if isinstance(ptr, ArrayValue):
                    ptr = PointerValue(ptr, 0)
                if not isinstance(ptr, PointerValue):
                    raise RuntimeFault("assignment through a non-pointer")
                old = _load_el(rt, ptr, 0)
                value = _apply_binary_rt(rt, bop, old, rcl(rt, frame))
                return _store_el(rt, ptr, 0, value)
        return cl, ek

    # -- calls -------------------------------------------------------------
    def _call(self, e: Call):
        name = e.name
        bare = self.timer_ok
        self.timer_ok = False
        if name in self.comp.functions:
            if self.comp.has_timers and name in self.comp.timer_fns \
                    and not bare:
                # a timer inside the callee reads the virtual clock while
                # this statement's batched cost is already flushed; the
                # enclosing statement must prove its flush is empty
                self.timer_expr_call = True
            acls = [self.expr(a)[0] for a in e.args]
            cfn = self.comp.cfns[name]
            if len(acls) == 0:
                def cl(rt, frame):
                    return _call_user(rt, cfn, [])
            elif len(acls) == 1:
                a0 = acls[0]

                def cl(rt, frame):
                    return _call_user(rt, cfn, [a0(rt, frame)])
            elif len(acls) == 2:
                a0, a1 = acls

                def cl(rt, frame):
                    return _call_user(rt, cfn, [a0(rt, frame),
                                                a1(rt, frame)])
            elif len(acls) == 3:
                a0, a1, a2 = acls

                def cl(rt, frame):
                    return _call_user(rt, cfn, [a0(rt, frame),
                                                a1(rt, frame),
                                                a2(rt, frame)])
            else:
                def cl(rt, frame):
                    return _call_user(rt, cfn,
                                      [a(rt, frame) for a in acls])
            return cl, K_UNKNOWN

        spec = MATH_BUILTINS.get(name)
        if spec is not None:
            acls = [self.expr(a)[0] for a in e.args]
            self.cost[BF] += spec.flop_cost
            fn = spec.fn
            if len(acls) == 1:
                a0 = acls[0]

                def cl(rt, frame):
                    return float(fn(a0(rt, frame)))
            elif len(acls) == 2:
                a0, a1 = acls

                def cl(rt, frame):
                    return float(fn(a0(rt, frame), a1(rt, frame)))
            else:
                def cl(rt, frame):
                    return float(fn(*[a(rt, frame) for a in acls]))
            return cl, K_FLOAT

        if name in SCALAR_WS_BUILTINS:
            bad = self._string_arg_fault(e, 0, name)
            if bad is not None:
                return bad, K_UNKNOWN
            key = e.args[0].value
            if name == "ws_int":
                def cl(rt, frame):
                    return int(rt.workload.scalar(key))
                return cl, K_INT

            def cl(rt, frame):
                return float(rt.workload.scalar(key))
            return cl, K_FLOAT

        elem_type = ARRAY_BUILTIN_TYPES.get(name)
        if elem_type is not None:
            if len(e.args) < 2:
                raise CompileUnsupported(f"{name}() needs (name, size)")
            bad = self._string_arg_fault(e, 0, name)
            if bad is not None:
                return bad, K_UNKNOWN
            key = e.args[0].value
            scl, sk = self.expr(e.args[1])
            check_int = sk is not K_INT
            kind = K_PTR_F if elem_type.is_floating else K_PTR_I

            def cl(rt, frame):
                size = scl(rt, frame)
                if check_int and not isinstance(size, int):
                    raise RuntimeFault(f"{name}() size must be an integer")
                return PointerValue(
                    rt.workload.buffer(key, size, elem_type), 0)
            return cl, kind

        if name == "rand01":
            self.cost[F] += 2

            def cl(rt, frame):
                return rt.rng.next01()
            return cl, K_FLOAT

        if name in _TIMER_NAMES:
            if not bare:
                raise CompileUnsupported(
                    f"{name}() in expression position")
            bad = self._string_arg_fault(e, 0, name)
            if bad is not None:
                return bad, K_UNKNOWN
            key = e.args[0].value
            if name == "timer_start":
                def cl(rt, frame):
                    rt.timer_starts[key] = _clock_rt(rt)
                    return 0
                return cl, K_INT

            def cl(rt, frame):
                start = rt.timer_starts.pop(key, None)
                if start is None:
                    raise RuntimeFault(
                        f"timer_stop({key!r}) without timer_start")
                elapsed = _clock_rt(rt) - start
                rt.report.timers[key] = (
                    rt.report.timers.get(key, 0.0) + elapsed)
                return 0
            return cl, K_INT

        if name == "printf":
            if not e.args or not isinstance(e.args[0], StringLit):
                def cl(rt, frame):
                    raise RuntimeFault("printf() needs a literal "
                                       "format string")
                return cl, K_UNKNOWN
            fmt = e.args[0].value.replace("\\n", "\n").replace("\\t", "\t")
            acls = [self.expr(a)[0] for a in e.args[1:]]

            def cl(rt, frame):
                vals = tuple(a(rt, frame) for a in acls)
                try:
                    text = fmt % vals if vals else fmt
                except (TypeError, ValueError) as exc:
                    raise RuntimeFault(
                        f"printf format error: {exc}") from None
                rt.report.stdout.append(text)
                return len(text)
            return cl, K_INT

        if is_builtin(name):
            def cl(rt, frame):
                raise RuntimeFault(f"unhandled builtin {name!r}")
            return cl, K_UNKNOWN

        def cl(rt, frame):
            raise RuntimeFault(f"call to unknown function {name!r}")
        return cl, K_UNKNOWN

    def _string_arg_fault(self, e: Call, pos: int, name: str):
        """A raising closure when arg ``pos`` is not a string literal."""
        if pos < len(e.args) and isinstance(e.args[pos], StringLit):
            return None

        def cl(rt, frame):
            raise RuntimeFault(
                f"{name}() argument {pos} must be a string literal")
        return cl

    # -- statements --------------------------------------------------------
    def stmt(self, s):
        """Compile one statement to a closure returning None / _BRK /
        _CNT / _RET.  Returns None for statements with no effect."""
        kind = type(s)
        if kind in (NullStmt, Comment):
            return None
        if kind is CompoundStmt:
            return self._compound(s)
        if kind is ForStmt:
            return self._for(s)
        if kind is WhileStmt:
            return self._while(s)
        if kind is DoWhileStmt:
            return self._dowhile(s)
        if kind is IfStmt:
            return self._if(s)
        saved = self.cost
        self.cost = _new_cost()
        self.timer_expr_call = False
        try:
            if kind is ExprStmt:
                if self.comp.has_timers and isinstance(s.expr, Call):
                    self.timer_ok = True
                ecl, _ = self.expr(s.expr)
                self.timer_ok = False

                def body(rt, frame):
                    ecl(rt, frame)
                    return None
            elif kind is DeclStmt:
                body = self._decl(s)
            elif kind is ReturnStmt:
                if s.expr is not None:
                    ecl, _ = self.expr(s.expr)

                    def body(rt, frame):
                        rt.ret = ecl(rt, frame)
                        return _RET
                else:
                    def body(rt, frame):
                        rt.ret = None
                        return _RET
            elif kind is BreakStmt:
                def body(rt, frame):
                    return _BRK
            elif kind is ContinueStmt:
                def body(rt, frame):
                    return _CNT
            elif kind is RawStmt:
                def body(rt, frame):
                    raise RuntimeFault(
                        "generated target-specific code (RawStmt) is not "
                        "interpretable; run the reference or kernel design "
                        "instead")
            else:
                name = kind.__name__

                def body(rt, frame):
                    raise RuntimeFault(f"cannot execute {name}")
            fl = _make_flush(self.cost)
        finally:
            self.cost = saved
        if self.timer_expr_call:
            self.timer_expr_call = False
            if fl is not None:
                # pre-flushing this statement's cost would skew the
                # virtual clock read by a timer inside the callee
                raise CompileUnsupported(
                    "timer-bearing call inside a statement with "
                    "static cost")
        if fl is None:
            return body

        def run(rt, frame):
            fl(rt.counter)
            return body(rt, frame)
        return run

    def _decl(self, s: DeclStmt):
        setters = []
        for var in s.decls:
            vcl = self._init_value(var)
            slot = self.declare(var.name, _decl_kind(var), var.ctype)
            setters.append(_make_setter(slot, vcl))
        if len(setters) == 1:
            return setters[0]

        def body(rt, frame):
            for st in setters:
                st(rt, frame)
            return None
        return body

    def _init_value(self, var):
        """Closure computing a declaration's initial value
        (mirrors ``Interpreter._init_decl``)."""
        ctype = var.ctype
        name = var.name
        if var.is_array:
            scl, _ = self.expr(var.array_size)

            def vcl(rt, frame):
                size = scl(rt, frame)
                if not isinstance(size, int):
                    raise RuntimeFault(
                        f"array {name!r} size must be an integer")
                return ArrayValue(size, ctype, name, is_local=True)
            return vcl
        if var.init is not None:
            icl, ik = self.expr(var.init)
            if ctype.is_pointer:
                def vcl(rt, frame):
                    value = icl(rt, frame)
                    if isinstance(value, ArrayValue):
                        return PointerValue(value, 0)
                    if not isinstance(value, PointerValue):
                        raise RuntimeFault(
                            f"initialising pointer {name!r} with "
                            "non-pointer")
                    return value
                return vcl
            if ctype.is_floating:
                if ik is K_FLOAT:
                    return icl
                if ik is K_INT:
                    def vcl(rt, frame):
                        return float(icl(rt, frame))
                    return vcl
            elif ctype.base != "bool":
                if ik is K_INT:
                    return icl
                if ik is K_FLOAT:
                    def vcl(rt, frame):
                        return _trunc(icl(rt, frame))
                    return vcl

            def vcl(rt, frame):
                return _convert_val(icl(rt, frame), ctype)
            return vcl
        if ctype.is_pointer:
            return lambda rt, frame: None
        default = 0.0 if ctype.is_floating else 0
        return lambda rt, frame: default

    def _compound(self, s: CompoundStmt):
        self.push_scope()
        try:
            cls = [c for c in (self.stmt(ch) for ch in s.stmts)
                   if c is not None]
        finally:
            self.pop_scope()
        if not cls:
            return None
        if len(cls) == 1:
            return cls[0]

        def run(rt, frame):
            for c in cls:
                r = c(rt, frame)
                if r is not None:
                    return r
            return None
        return run

    def _if(self, s: IfStmt):
        saved = self.cost
        self.cost = _new_cost()
        self.cost[B] += 1
        self.timer_expr_call = False
        ccl, _ = self.expr(s.cond)
        if self.timer_expr_call:
            self.timer_expr_call = False
            if self.cost != [0, 0, 1, 0, 0, 0]:
                # the branch event itself is charged before the condition
                # runs in both engines; anything more would skew a timer
                raise CompileUnsupported(
                    "timer-bearing call in a costed if-condition")
        fl = _make_flush(self.cost)
        self.cost = saved
        tcl = self.stmt(s.then) or _nop
        if s.els is None:
            def run(rt, frame):
                fl(rt.counter)
                if truthy(ccl(rt, frame)):
                    return tcl(rt, frame)
                return None
            return run
        ecl = self.stmt(s.els) or _nop

        def run(rt, frame):
            fl(rt.counter)
            if truthy(ccl(rt, frame)):
                return tcl(rt, frame)
            return ecl(rt, frame)
        return run

    def _loop_needs_seal(self, s) -> bool:
        """Batched (per-exit) cond/inc accounting is exact unless a
        timer call can execute inside the loop's dynamic extent: only
        then can the virtual clock be read while deferred cost is
        pending.  Timers wrapped *around* a loop (the hotspot
        instrumentation pattern) never force the slow path."""
        if not self.safe:
            return False
        timer_fns = self.comp.timer_fns
        for node in s.walk():
            if isinstance(node, Call) and (node.name in _TIMER_NAMES
                                           or node.name in timer_fns):
                return True
        return False

    def _cond_inc(self, cond, inc, sealed: bool):
        """Compile loop condition/increment with their own cost vectors
        (flushed once per observed check/iteration on loop exit, or per
        evaluation when the loop encloses timer reads)."""
        ccl = cond_mf = icl = inc_mf = None
        if cond is not None:
            saved = self.cost
            self.cost = _new_cost()
            self.cost[B] += 1
            self.timer_expr_call = False
            ccl, _ = self.expr(cond)
            if self.timer_expr_call:
                self.timer_expr_call = False
                if self.cost != [0, 0, 1, 0, 0, 0]:
                    raise CompileUnsupported(
                        "timer-bearing call in a costed loop condition")
            cond_cost = self.cost
            self.cost = saved
            if sealed:
                ccl = _seal_cl(ccl, cond_cost)
            else:
                cond_mf = _make_mul_flush(cond_cost)
        if inc is not None:
            saved = self.cost
            self.cost = _new_cost()
            self.timer_expr_call = False
            icl, _ = self.expr(inc)
            if self.timer_expr_call:
                self.timer_expr_call = False
                if any(self.cost):
                    raise CompileUnsupported(
                        "timer-bearing call in a costed loop increment")
            inc_cost = self.cost
            self.cost = saved
            if sealed:
                icl = _seal_cl(icl, inc_cost)
            else:
                inc_mf = _make_mul_flush(inc_cost)
        return ccl, cond_mf, icl, inc_mf

    def _for(self, s: ForStmt):
        self.push_scope()
        try:
            sealed = self._loop_needs_seal(s)
            init_cl = self.stmt(s.init) if s.init is not None else None
            ccl, cond_mf, icl, inc_mf = self._cond_inc(s.cond, s.inc, sealed)
            body_cl = self.stmt(s.body) or _nop
            plan = None
            if not sealed:
                from repro.lang.vectorize import try_vectorize
                plan = try_vectorize(self, s)
                if plan is not None:
                    # compile-time count: the runtime driver stays
                    # un-instrumented (it is the hot path)
                    from repro import obs
                    obs.REGISTRY.counter(
                        "repro_exec_fastpath_plans_total",
                        "affine loops lowered to a numpy fast path",
                    ).inc()
        finally:
            self.pop_scope()
        return _make_for_driver(init_cl, ccl, icl, body_cl, cond_mf,
                                inc_mf, s.node_id, plan)

    def _while(self, s: WhileStmt):
        ccl, cond_mf, _, _ = self._cond_inc(s.cond, None,
                                            self._loop_needs_seal(s))
        body_cl = self.stmt(s.body) or _nop
        return _make_while_driver(ccl, body_cl, cond_mf, s.node_id)

    def _dowhile(self, s: DoWhileStmt):
        ccl, cond_mf, _, _ = self._cond_inc(s.cond, None,
                                            self._loop_needs_seal(s))
        body_cl = self.stmt(s.body) or _nop
        return _make_dowhile_driver(ccl, body_cl, cond_mf, s.node_id)


def _nop(rt, frame):
    return None


def _make_setter(slot, vcl):
    def st(rt, frame):
        frame[slot] = vcl(rt, frame)
        return None
    return st


def _seal_cl(cl, cost):
    fl = _make_flush(cost)
    if fl is None:
        return cl

    def run(rt, frame):
        fl(rt.counter)
        return cl(rt, frame)
    return run


def _decl_kind(var) -> int:
    if var.is_array:
        if var.ctype.is_pointer:
            return K_PTR_U
        return K_PTR_F if var.ctype.is_floating else K_PTR_I
    return _kind_of_ctype(var.ctype)


# -------------------------------------------------------------------------
# Loop drivers.  Exact replicas of the interpreter's trip/check/branch
# accounting; condition and increment costs are multiplied by the
# observed counts on exit instead of flushed per iteration.
# -------------------------------------------------------------------------
def _loop_exit(rt, c, cond_mf, inc_mf, checks, incs, node_id, trips):
    if cond_mf is not None and checks:
        cond_mf(c, checks)
    if inc_mf is not None and incs:
        inc_mf(c, incs)
    rt.counter_stack.pop()
    parent = rt.counter_stack[-1]
    rt.counter = parent
    parent.add(c)
    prof = rt.report.loop(node_id)
    prof.entries += 1
    prof.trip_counts.append(trips)
    prof.inclusive.add(c)


def _make_for_driver(init_cl, ccl, icl, body_cl, cond_mf, inc_mf,
                     node_id, plan):
    def run(rt, frame):
        c = Counter()
        rt.counter_stack.append(c)
        rt.counter = c
        trips = checks = incs = 0
        res = None
        try:
            if init_cl is not None:
                init_cl(rt, frame)
            if plan is not None:
                done = plan(rt, frame, c)
                if done > 0:
                    trips = checks = incs = done
                    rt.steps += done
                    _check_steps(rt)
            max_steps = rt.max_steps
            while True:
                if ccl is not None:
                    checks += 1
                    if not truthy(ccl(rt, frame)):
                        break
                rt.steps += 1
                if rt.steps > max_steps:
                    raise ExecLimitExceeded(
                        f"exceeded {max_steps} interpreter steps")
                r = body_cl(rt, frame)
                if r is not None:
                    if r is _BRK:
                        trips += 1
                        break
                    if r is _RET:
                        res = r
                        break
                trips += 1
                if icl is not None:
                    incs += 1
                    icl(rt, frame)
        finally:
            _loop_exit(rt, c, cond_mf, inc_mf, checks, incs,
                       node_id, trips)
        return res
    return run


def _make_while_driver(ccl, body_cl, cond_mf, node_id):
    def run(rt, frame):
        c = Counter()
        rt.counter_stack.append(c)
        rt.counter = c
        trips = checks = 0
        res = None
        try:
            max_steps = rt.max_steps
            while True:
                checks += 1
                if not truthy(ccl(rt, frame)):
                    break
                rt.steps += 1
                if rt.steps > max_steps:
                    raise ExecLimitExceeded(
                        f"exceeded {max_steps} interpreter steps")
                r = body_cl(rt, frame)
                if r is not None:
                    if r is _BRK:
                        trips += 1
                        break
                    if r is _RET:
                        res = r
                        break
                trips += 1
        finally:
            _loop_exit(rt, c, cond_mf, None, checks, 0, node_id, trips)
        return res
    return run


def _make_dowhile_driver(ccl, body_cl, cond_mf, node_id):
    def run(rt, frame):
        c = Counter()
        rt.counter_stack.append(c)
        rt.counter = c
        trips = checks = 0
        res = None
        try:
            max_steps = rt.max_steps
            while True:
                rt.steps += 1
                if rt.steps > max_steps:
                    raise ExecLimitExceeded(
                        f"exceeded {max_steps} interpreter steps")
                r = body_cl(rt, frame)
                if r is not None:
                    if r is _BRK:
                        trips += 1
                        break
                    if r is _RET:
                        res = r
                        break
                trips += 1
                checks += 1
                if not truthy(ccl(rt, frame)):
                    break
        finally:
            _loop_exit(rt, c, cond_mf, None, checks, 0, node_id, trips)
        return res
    return run


# -------------------------------------------------------------------------
# Program assembly.
# -------------------------------------------------------------------------
class _Compiler:
    def __init__(self, unit: TranslationUnit):
        self.unit = unit
        self.functions: Dict[str, FunctionDecl] = {
            fn.name: fn for fn in unit.functions() if fn.body is not None}
        self.cfns: Dict[str, _CFn] = {
            name: _CFn(name, len(fn.params))
            for name, fn in self.functions.items()}
        self.global_vars: Dict[str, Tuple[int, int, CType]] = {}
        self.nglobals = 0
        self.has_timers = any(
            isinstance(n, Call) and n.name in _TIMER_NAMES
            for n in unit.walk())
        self.timer_fns = self._scan_timer_fns() if self.has_timers else set()
        self.global_inits: List = []
        self._compile_globals()
        for name, fn in self.functions.items():
            self._compile_fn(fn, self.cfns[name])

    def _scan_timer_fns(self):
        contains = {}
        calls = {}
        for name, fn in self.functions.items():
            has = False
            callees = set()
            for node in fn.body.walk():
                if isinstance(node, Call):
                    if node.name in _TIMER_NAMES:
                        has = True
                    elif node.name in self.functions:
                        callees.add(node.name)
            contains[name] = has
            calls[name] = callees
        timer_fns = {n for n, h in contains.items() if h}
        changed = True
        while changed:
            changed = False
            for n, callees in calls.items():
                if n not in timer_fns and callees & timer_fns:
                    timer_fns.add(n)
                    changed = True
        return timer_fns

    def _compile_globals(self) -> None:
        # each initializer sees only the globals declared before it,
        # matching the interpreter's in-order binding
        for decl in self.unit.decls:
            if not isinstance(decl, DeclStmt):
                continue
            for var in decl.decls:
                fc = _Fc(self, self.has_timers)
                vcl = fc._init_value(var)
                fl = _make_flush(fc.cost)
                slot = self.nglobals
                self.nglobals += 1
                self.global_vars[var.name] = (slot, _decl_kind(var),
                                              var.ctype)
                self.global_inits.append(_make_global_init(slot, vcl, fl))

    def _compile_fn(self, fn: FunctionDecl, cfn: _CFn) -> None:
        fc = _Fc(self, self.has_timers)
        fc.push_scope()
        for param in fn.params:
            ct = param.ctype
            slot = fc.declare(param.name, _kind_of_ctype(ct), ct)
            if ct.is_pointer:
                mode = "p"
                want = (ct.element_type().is_floating
                        if ct.pointers == 1 and ct.base != "void" else None)
            elif ct.is_floating:
                mode, want = "f", None
            elif ct.base == "bool":
                mode, want = "b", None
            else:
                mode, want = "i", None
            cfn.param_info.append((slot, mode, want, param.name, ct))
        cfn.body = fc.stmt(fn.body) or _nop
        fc.pop_scope()
        cfn.frame_size = max(fc.nslots, 1)


def _make_global_init(slot, vcl, fl):
    if fl is None:
        def st(rt):
            rt.globals[slot] = vcl(rt, rt.globals)
    else:
        def st(rt):
            fl(rt.counter)
            rt.globals[slot] = vcl(rt, rt.globals)
    return st


class CompiledProgram:
    """A translation unit lowered to closures, runnable many times."""

    def __init__(self, unit: TranslationUnit):
        comp = _Compiler(unit)
        self._global_inits = comp.global_inits
        self._cfns = comp.cfns
        self._nglobals = comp.nglobals

    def run(self, workload: Optional[Workload] = None, entry: str = "main",
            max_steps: Optional[int] = None, args: Sequence = ()
            ) -> ExecReport:
        if workload is None:
            workload = Workload()
        rt = _Rt(workload,
                 max_steps if max_steps is not None else DEFAULT_MAX_STEPS,
                 self._nglobals)
        for st in self._global_inits:
            st(rt)
        cfn = self._cfns.get(entry)
        if cfn is None:
            raise RuntimeFault(f"no entry function {entry!r}")
        rt.report.return_value = _call_user(rt, cfn, list(args))
        rt.report.steps = rt.steps
        return rt.report


def compile_unit(unit: TranslationUnit) -> CompiledProgram:
    """Compile ``unit``; raises :class:`CompileUnsupported` when the
    unit uses constructs the compiler cannot model exactly."""
    return CompiledProgram(unit)
