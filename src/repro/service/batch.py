"""Batch front-end: expand app x mode requests, stream results.

``expand_jobs`` turns an "all apps x all modes" style request into a
list of :class:`FlowJob` specs; ``iter_batch`` submits them to a
:class:`DesignService` and yields :class:`BatchItem` outcomes in
completion order (cache hits first, then executed jobs as the pool
finishes them); ``run_batch`` collects everything into a
:class:`BatchReport` with the fleet telemetry snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.apps.registry import ALL_APPS, PAPER_ORDER
from repro.service.jobs import FlowJob, VALID_MODES


def expand_jobs(apps: Optional[Sequence[str]] = None,
                modes: Optional[Sequence[str]] = None,
                **job_kwargs) -> List[FlowJob]:
    """Cartesian expansion of an app/mode request into jobs.

    ``apps=None`` means every registered benchmark (paper order);
    ``modes=None`` means both informed and uninformed.  Extra keyword
    arguments (priority, timeout_s, retries, scale, ...) apply to every
    expanded job.
    """
    apps = list(apps) if apps else list(PAPER_ORDER)
    modes = list(modes) if modes else list(VALID_MODES)
    for app in apps:
        if app not in ALL_APPS:
            raise KeyError(
                f"unknown app {app!r}; known: {sorted(ALL_APPS)}")
    for mode in modes:
        if mode not in VALID_MODES:
            raise KeyError(
                f"unknown mode {mode!r}; valid: {VALID_MODES}")
    return [FlowJob(app=app, mode=mode, **job_kwargs)
            for app in apps for mode in modes]


@dataclass
class BatchItem:
    """Outcome of one job in a batch."""

    job: FlowJob
    source: str                  # 'run' | 'cache-disk' | 'cache-memory'
    result: Any = None           # FlowResult | FlowResultRecord | None
    error: Optional[BaseException] = None
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def best_speedup(self) -> Optional[float]:
        if self.result is None:
            return None
        best = self.result.auto_selected
        return best.speedup if best is not None else None

    @property
    def best_label(self) -> Optional[str]:
        if self.result is None:
            return None
        best = self.result.auto_selected
        return best.metadata.get("device_label") if best else None


@dataclass
class BatchReport:
    items: List[BatchItem] = field(default_factory=list)
    telemetry: Optional[Dict[str, Any]] = None
    cache_stats: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return all(item.ok for item in self.items)

    @property
    def failed(self) -> List[BatchItem]:
        return [item for item in self.items if not item.ok]


def iter_batch(service, jobs: Iterable[FlowJob],
               timeout: Optional[float] = None) -> Iterator[BatchItem]:
    """Submit jobs and yield outcomes as they complete."""
    for submission, result, error in service.stream(jobs, timeout=timeout):
        yield BatchItem(job=submission.job, source=submission.source,
                        result=result, error=error,
                        wall_s=submission.wall_s)


def run_batch(service, jobs: Iterable[FlowJob],
              on_item=None, timeout: Optional[float] = None) -> BatchReport:
    """Run a whole batch; ``on_item`` streams progress (CLI printing)."""
    report = BatchReport()
    for item in iter_batch(service, jobs, timeout=timeout):
        report.items.append(item)
        if on_item is not None:
            on_item(item)
    report.telemetry = service.telemetry.to_dict()
    if service.cache is not None:
        stats = service.cache.stats
        report.cache_stats = {
            "hits": stats.hits, "misses": stats.misses,
            "writes": stats.writes, "invalidated": stats.invalidated,
        }
    return report
