"""FlowJob: the unit of work the design-generation service schedules.

A job names one (app, mode) PSA-flow execution plus the engine knobs
that change its outcome (the Fig. 3 intensity threshold, the workload
scale).  Jobs are value objects: two jobs with the same content hash
(:meth:`FlowJob.key`) produce byte-identical results, which is what
lets the scheduler deduplicate in-flight work and the cache persist
results across processes.

The key covers everything result-determining: the cache format
version, the app's *source text* (so editing a benchmark invalidates
its cached designs), the mode, and the engine configuration.  Bump
``repro.service.cache.CACHE_FORMAT_VERSION`` when the serialized
result schema or flow semantics change; every stale entry then reads
as a miss and is dropped.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.apps.registry import ALL_APPS, get_app
from repro.config import DSE_MODES
from repro.flow.engine import FlowEngine, FlowResult

#: modes a job may request (FlowEngine.strategy_for rejects others too)
VALID_MODES = ("informed", "uninformed")


class JobValidationError(ValueError):
    """A FlowJob field is out of range or names an unknown app/mode."""


@dataclass(frozen=True)
class FlowJob:
    """One schedulable PSA-flow execution.

    ``priority`` orders submission in batch runs (higher first); it is
    not part of the content hash -- the same work at a different
    priority is still the same work.
    """

    app: str
    mode: str = "informed"
    #: Fig. 3 FLOPs/byte threshold X at branch point A
    intensity_threshold: float = 0.25
    #: workload scale handed to the interpreter
    scale: float = 1.0
    priority: int = 0
    #: per-job attempt timeout in seconds (None = scheduler default)
    timeout_s: Optional[float] = None
    #: bounded retries on failure/timeout (None = scheduler default)
    retries: Optional[int] = None
    #: DSE lowering override: ``batched`` | ``point`` (None = the
    #: process default, ``$REPRO_DSE``).  A whole batched sweep is one
    #: job -- one cache entry, one span tree -- and because the two
    #: lowerings are element-wise identical they share content hashes
    #: unless explicitly pinned here.
    dse: Optional[str] = None

    def __post_init__(self):
        if self.app not in ALL_APPS:
            raise JobValidationError(
                f"unknown app {self.app!r}; known: {sorted(ALL_APPS)}")
        if self.mode not in VALID_MODES:
            raise JobValidationError(
                f"unknown mode {self.mode!r}; valid: {VALID_MODES}")
        if not self.intensity_threshold > 0:
            raise JobValidationError(
                f"intensity_threshold must be > 0, "
                f"got {self.intensity_threshold}")
        if not self.scale > 0:
            raise JobValidationError(f"scale must be > 0, got {self.scale}")
        if not isinstance(self.priority, int):
            raise JobValidationError(
                f"priority must be an int, got {self.priority!r}")
        if self.timeout_s is not None and not self.timeout_s > 0:
            raise JobValidationError(
                f"timeout_s must be > 0, got {self.timeout_s}")
        if self.retries is not None and self.retries < 0:
            raise JobValidationError(
                f"retries must be >= 0, got {self.retries}")
        if self.dse is not None and self.dse not in DSE_MODES:
            raise JobValidationError(
                f"unknown dse mode {self.dse!r}; valid: {DSE_MODES}")

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        return f"{self.app}/{self.mode}"

    def spec(self) -> Dict[str, Any]:
        """The result-determining content of this job, as plain data.

        This is both the hash input and the picklable payload a process
        worker rebuilds the job from.
        """
        from repro.service.cache import CACHE_FORMAT_VERSION

        spec = {
            "format": CACHE_FORMAT_VERSION,
            "app": self.app,
            "source_sha": hashlib.sha256(
                get_app(self.app).source.encode("utf-8")).hexdigest(),
            "mode": self.mode,
            "intensity_threshold": self.intensity_threshold,
            "scale": self.scale,
        }
        # only a *pinned* lowering enters the hash: the lowerings are
        # result-identical, so unpinned jobs keep their historical keys
        # and stay interchangeable with pinned ones' cache entries only
        # when the caller asked for that distinction
        if self.dse is not None:
            spec["dse"] = self.dse
        return spec

    def key(self) -> str:
        """Deterministic content hash -- cache and dedup identity."""
        canonical = json.dumps(self.spec(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @classmethod
    def from_spec(cls, spec: Dict[str, Any], **overrides) -> "FlowJob":
        return cls(app=spec["app"], mode=spec["mode"],
                   intensity_threshold=spec["intensity_threshold"],
                   scale=spec["scale"], dse=spec.get("dse"),
                   **overrides)


# ----------------------------------------------------------------------
# Execution entry points
# ----------------------------------------------------------------------

def execute_job(job: FlowJob, engine: Optional[FlowEngine] = None,
                observer=None) -> FlowResult:
    """Run one job in this process and return the live FlowResult."""
    import os
    import time

    from repro.resilience import faults

    # chaos site: a transient worker error the retry policy absorbs
    faults.inject("worker.exec")
    # $REPRO_SIM_LATENCY_S models the external-toolchain wall time a
    # real (non-simulated) flow spends blocked on vendor tools -- the
    # regime where fleet scale-out pays.  Read lazily like the other
    # execution knobs so pool workers inherit it; 0/unset is free.
    try:
        latency = float(os.environ.get("REPRO_SIM_LATENCY_S") or 0.0)
    except ValueError:
        latency = 0.0
    if latency > 0:
        time.sleep(latency)
    engine = engine or FlowEngine(
        intensity_threshold=job.intensity_threshold)
    if job.dse is None:
        return engine.run(get_app(job.app), mode=job.mode,
                          scale=job.scale, observer=observer)
    # pin the DSE lowering for this job; the sweep reads $REPRO_DSE
    # lazily, so scope the override to the run and restore after
    previous = os.environ.get("REPRO_DSE")
    os.environ["REPRO_DSE"] = job.dse
    try:
        return engine.run(get_app(job.app), mode=job.mode,
                          scale=job.scale, observer=observer)
    finally:
        if previous is None:
            os.environ.pop("REPRO_DSE", None)
        else:
            os.environ["REPRO_DSE"] = previous


def execute_job_payload(spec: Dict[str, Any],
                        collect_obs: bool = False) -> Dict[str, Any]:
    """Process-pool worker: run a job spec, return plain data.

    Module-level and dict-in/dict-out so it pickles across the process
    boundary; the serialized result (sources included, so the cache
    entry is complete) and the telemetry spans travel back as JSON-
    compatible payload.

    ``collect_obs`` is passed separately from ``spec`` because the spec
    is the content-hash input -- tracing must not change cache keys.
    When set, the worker collects its ``repro.obs`` spans and ships
    them back as ``obs_spans`` dicts for the service to re-home under
    the submitting span (``obs.adopt_spans``).
    """
    import multiprocessing
    import os

    from repro import obs
    from repro.flow.serialize import result_to_dict
    from repro.resilience import faults
    from repro.service.telemetry import Tracer

    # chaos site: hard worker death (BrokenProcessPool on the driver
    # side).  Gated to real pool children so a thread-pool or direct
    # caller can never take the whole process down.
    if multiprocessing.parent_process() is not None:
        try:
            faults.inject("worker.crash")
        except faults.InjectedFault:
            os._exit(13)

    job = FlowJob.from_spec(spec)
    tracer = Tracer()
    collector = obs.add_sink(obs.SpanCollector()) if collect_obs else None
    try:
        # same root shape as the thread-pool path; adopt_spans re-homes
        # this root under the submitting span on the service side
        with obs.span("service.job", app=job.app, mode=job.mode,
                      key=job.key()[:12], pool="process"):
            result = execute_job(job, observer=tracer)
    finally:
        if collector is not None:
            obs.remove_sink(collector)
    payload = {
        "key": job.key(),
        "result": result_to_dict(result, include_sources=True),
        "telemetry": tracer.to_dict(),
    }
    if collector is not None:
        payload["obs_spans"] = [s.to_dict()
                                for s in collector.snapshot()]
    return payload
