"""DesignService: cached, scheduled, observable flow execution.

The lookup path for one submitted :class:`FlowJob`:

1. **memory** -- results this service instance already holds;
2. **disk** -- the persistent :class:`ResultCache` (if configured),
   shared across processes and runs;
3. **in-flight dedup** -- an identical job already executing;
4. **run** -- schedule the flow on the worker pool.

Executed results are written back to both layers, so a warm rerun of a
whole batch is pure cache reads.  Every lookup and execution feeds the
:class:`FleetTelemetry` counters and span records.

Results are live :class:`FlowResult` objects when the flow ran in this
process (thread pool), and :class:`FlowResultRecord` (the deserialized
read-side equivalent) when they came from the disk cache or a process
worker; both expose the read API the evaluation harness consumes.

An engine carrying a custom ``strategy_a`` override cannot be content-
hashed or pickled, so such a service runs uncached and in-process --
correctness over throughput for experimental strategies.

Resilience (see :mod:`repro.resilience`): jobs whose payloads keep
crashing pool workers resolve :class:`JobQuarantined` and land in the
**dead-letter queue** next to the result cache; re-submitting a
dead-lettered job fast-fails without touching the pool.  A spike of
dead-letters trips the service's **overload breaker**: new work is
shed with :class:`ServiceOverloaded` (cache reads and in-flight joins
still serve) until the cooldown passes.  A failed cache write degrades
to an uncached result instead of failing the job.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro import obs
from repro.flow.engine import FlowEngine
from repro.flow.serialize import result_from_dict, result_to_dict
from repro.resilience import (
    CircuitBreaker, DEAD_LETTER_DIRNAME, DeadLetterQueue, faults,
)
from repro.service.cache import ResultCache
from repro.service.jobs import FlowJob, execute_job, execute_job_payload
from repro.service.scheduler import (
    JobHandle, JobQuarantined, JobResultPending, JobScheduler, JobStatus,
)
from repro.service.telemetry import (
    FleetTelemetry, JobTelemetry, Tracer,
)


class ServiceOverloaded(RuntimeError):
    """The overload breaker is open: new work is being shed.

    Raised by :meth:`DesignService.submit` for jobs that would need to
    *run*; cached results and in-flight joins are still served.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class _Pending:
    """In-flight job bookkeeping shared by every waiter."""

    def __init__(self, job: FlowJob, key: str,
                 obs_parent: Optional[Dict[str, str]] = None):
        self.job = job
        self.key = key
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.event = threading.Event()
        self.handle: Optional[JobHandle] = None
        # the submitter's span context: worker spans (thread pool) and
        # adopted payload spans (process pool) parent onto it.  An
        # explicit obs_parent (a remote caller's context, e.g. the
        # fleet router via X-Repro-Parent) wins over the local one so
        # router->runner traces stitch into a single tree.
        self.obs_ctx: Optional[Dict[str, str]] = (
            obs_parent or obs.current_context())

    def resolve(self, value: Any = None,
                error: Optional[BaseException] = None) -> None:
        self.value = value
        self.error = error
        self.event.set()


class ServiceResult:
    """Handle on one submitted job's (possibly cached) result."""

    def __init__(self, job: FlowJob, source: str,
                 value: Any = None, pending: Optional[_Pending] = None):
        self.job = job
        self.source = source          # 'cache-memory' | 'cache-disk'
        self._value = value           # | 'run' | 'inflight'
        self._pending = pending

    def done(self) -> bool:
        return self._pending is None or self._pending.event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        if self._pending is None:
            return self._value
        if not self._pending.event.wait(timeout):
            handle = self._pending.handle
            raise JobResultPending(
                self._pending.key,
                handle.status.value if handle else "pending",
                handle.attempts if handle else 0,
                timeout, label=self.job.label)
        if self._pending.error is not None:
            raise self._pending.error
        return self._pending.value

    @property
    def wall_s(self) -> float:
        if self._pending is not None and self._pending.handle is not None:
            return self._pending.handle.wall_s
        return 0.0

    def __repr__(self):
        state = "done" if self.done() else "pending"
        return f"<ServiceResult {self.job.label} {self.source} {state}>"


class DesignService:
    """The concurrent design-generation service."""

    def __init__(self, engine: Optional[FlowEngine] = None,
                 cache_dir: Optional[str] = None,
                 workers: int = 1, pool: str = "auto",
                 default_timeout: Optional[float] = None,
                 default_retries: int = 0,
                 crash_retries: int = 2,
                 overload_threshold: int = 3,
                 overload_cooldown_s: float = 30.0,
                 telemetry: Optional[FleetTelemetry] = None,
                 tracer_factory=None,
                 cache: Optional[Any] = None):
        self.engine = engine or FlowEngine()
        # a custom strategy object defeats content hashing and pickling
        self._cacheable = self.engine._strategy_override is None
        # `cache` accepts any CacheBackend (e.g. the fleet tier's
        # PeerFetchCache); cache_dir remains the plain-disk shorthand
        if cache is not None and self._cacheable:
            self.cache = cache
        else:
            self.cache = (ResultCache(cache_dir)
                          if cache_dir and self._cacheable else None)
        self.scheduler = JobScheduler(
            workers=workers,
            mode="thread" if not self._cacheable else pool,
            default_timeout=default_timeout,
            default_retries=default_retries,
            crash_retries=crash_retries)
        # dead-letter records persist next to the result cache so one
        # directory carries the whole service state; memory-only else
        dl_root = cache_dir or getattr(self.cache, "root", None)
        self.dead_letter = DeadLetterQueue(
            os.path.join(dl_root, DEAD_LETTER_DIRNAME)
            if self.cache is not None and dl_root else None)
        # trips after `overload_threshold` dead-letters with no
        # successful completion in between; while open, submit() sheds
        # work that would need to run
        self._overload = CircuitBreaker(
            "service.admission",
            failure_threshold=overload_threshold,
            cooldown_s=overload_cooldown_s)
        self.telemetry = telemetry or FleetTelemetry()
        # per-job flow observer override (the HTTP server streams live
        # task events through this); called as factory(job, key)
        self._tracer_factory = tracer_factory
        self._memory: Dict[str, Any] = {}
        self._pending: Dict[str, _Pending] = {}
        self._lock = threading.Lock()
        self._listeners: List[Any] = []

    @property
    def overload_state(self) -> str:
        """Admission breaker state: 'closed', 'half-open' or 'open'."""
        return self._overload.state

    # ------------------------------------------------------------------
    # Lifecycle listeners (the HTTP front end's event feed).
    # ------------------------------------------------------------------
    def add_listener(self, listener) -> None:
        """Register ``listener(event, job, key, info)``.

        Events: ``"lookup"`` (info carries ``source``), ``"scheduled"``
        (the job will run on the pool), ``"done"`` (terminal; info
        carries ``status``, ``attempts``, ``wall_s`` and ``error``).
        Listeners run on service/driver threads and must not block;
        exceptions are swallowed.
        """
        with self._lock:
            if listener not in self._listeners:
                self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def set_tracer_factory(self, factory) -> None:
        """Install (or clear) the per-job flow-observer factory.

        ``factory(job, key)`` must return a
        :class:`~repro.service.telemetry.Tracer`; it applies to
        thread-pool executions scheduled after the call (process
        workers rebuild their own tracer and ship it back as data).
        """
        self._tracer_factory = factory

    def _notify(self, event: str, job: FlowJob, key: str,
                **info: Any) -> None:
        for listener in list(self._listeners):
            try:
                listener(event, job, key, dict(info))
            except Exception:
                pass  # a broken listener must never take down a job

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """Live service state for health endpoints and operators."""
        import repro

        with self._lock:
            pending = len(self._pending)
            memory = len(self._memory)
        cache_stats = None
        if self.cache is not None:
            try:
                cache_stats = {
                    "entries": len(self.cache),
                    "bytes": self.cache.size_bytes(),
                    "quarantined": sum(
                        1 for _ in self.cache.quarantined()),
                    "hits": self.cache.stats.hits,
                    "misses": self.cache.stats.misses,
                    "writes": self.cache.stats.writes,
                    "corrupt": self.cache.stats.corrupt,
                }
            except OSError:
                cache_stats = None     # a sick disk must not fail health
        return {
            # the router refuses mixed-version runners off this field
            "version": repro.__version__,
            "overload": self._overload.snapshot(),
            "scheduler": {
                "mode": self.scheduler.mode,
                "workers": self.scheduler.workers,
                "inflight": self.scheduler.inflight,
                "pool_rebuilds": self.scheduler.pool_rebuilds,
            },
            "pending_jobs": pending,
            "memory_entries": memory,
            "cache_dir": getattr(self.cache, "root", None),
            "cache": cache_stats,
            "dead_letter": len(self.dead_letter),
        }

    def lookup(self, job: FlowJob) -> Optional[ServiceResult]:
        """A result this service can serve *without* scheduling work.

        Checks memory, the disk cache, and in-flight dedup; returns
        None when the job would have to run.  Never trips admission
        control -- the HTTP front end uses this to keep serving cached
        results while shedding new work.
        """
        key = job.key()
        with self._lock:
            if key in self._memory:
                return ServiceResult(job, "cache-memory",
                                     value=self._memory[key])
            pending = self._pending.get(key)
            if pending is not None:
                return ServiceResult(job, "inflight", pending=pending)
            if self.cache is not None:
                record = self.cache.get(key)
                if record is not None:
                    self._memory[key] = record
                    return ServiceResult(job, "cache-disk", value=record)
        return None

    # ------------------------------------------------------------------
    def job_for(self, app: str, mode: str, **kwargs) -> FlowJob:
        """A job matching this service's engine configuration."""
        return FlowJob(app=app, mode=mode,
                       intensity_threshold=self.engine.intensity_threshold,
                       **kwargs)

    def submit(self, job: FlowJob,
               obs_parent: Optional[Dict[str, str]] = None
               ) -> ServiceResult:
        key = job.key()
        with self._lock:
            if key in self._memory:
                obs.event("service.lookup", source="cache-memory",
                          app=job.app, mode=job.mode)
                self.telemetry.count("cache_hit_memory")
                self.telemetry.record_job(JobTelemetry(
                    key=key, app=job.app, mode=job.mode,
                    source="cache-memory", status="ok"))
                self._notify("lookup", job, key, source="cache-memory")
                return ServiceResult(job, "cache-memory",
                                     value=self._memory[key])
            pending = self._pending.get(key)
            if pending is not None:
                obs.event("service.lookup", source="inflight",
                          app=job.app, mode=job.mode)
                self.telemetry.count("dedup")
                self.telemetry.record_job(JobTelemetry(
                    key=key, app=job.app, mode=job.mode,
                    source="inflight", status="ok"))
                self._notify("lookup", job, key, source="inflight")
                return ServiceResult(job, "inflight", pending=pending)
            if self.cache is not None:
                record = self.cache.get(key)
                if record is not None:
                    obs.event("service.lookup", source="cache-disk",
                              app=job.app, mode=job.mode)
                    self.telemetry.count("cache_hit_disk")
                    self.telemetry.record_job(JobTelemetry(
                        key=key, app=job.app, mode=job.mode,
                        source="cache-disk", status="ok"))
                    self._memory[key] = record
                    self._notify("lookup", job, key, source="cache-disk")
                    return ServiceResult(job, "cache-disk", value=record)
                self.telemetry.count("cache_miss")
            if self.dead_letter.contains(key):
                # quarantined payloads never reach the pool again
                obs.event("service.lookup", source="dead-letter",
                          app=job.app, mode=job.mode)
                self.telemetry.count("dead_letter_hit")
                self.telemetry.record_job(JobTelemetry(
                    key=key, app=job.app, mode=job.mode,
                    source="dead-letter", status="quarantined"))
                record = self.dead_letter.get(key) or {}
                refused = _Pending(job, key)
                refused.resolve(error=JobQuarantined(
                    f"{job.label} is dead-lettered "
                    f"({record.get('reason', 'unknown')}); "
                    f"release it via `repro service dead-letter --clear`",
                    key=key, crashes=record.get("crashes", 0)))
                self._notify("lookup", job, key, source="dead-letter")
                return ServiceResult(job, "dead-letter", pending=refused)
            if not self._overload.allow():
                obs.event("service.overloaded", app=job.app, mode=job.mode)
                self.telemetry.count("overload_rejected")
                self._notify("lookup", job, key, source="shed",
                             retry_after_s=self._overload.cooldown_s)
                raise ServiceOverloaded(
                    f"service overloaded (admission breaker open after "
                    f"{self._overload.trips} trip(s)); shedding "
                    f"{job.label}",
                    retry_after_s=self._overload.cooldown_s)
            pending = _Pending(job, key, obs_parent=obs_parent)
            self._pending[key] = pending
        return self._schedule(pending)

    def _schedule(self, pending: _Pending) -> ServiceResult:
        job = pending.job
        if self.scheduler.mode == "process":
            # the extra arg rides outside spec(): it must not perturb
            # the content hash.  Workers inherit $REPRO_TRACE_DIR sinks
            # on their own; collect_obs ships spans back for adoption.
            fn, args = execute_job_payload, (job.spec(), obs.enabled())
        else:
            parent = pending.obs_ctx
            make_tracer = self._tracer_factory or (lambda _job, _key:
                                                   Tracer())

            def fn():
                with obs.span("service.job", parent=parent,
                              app=job.app, mode=job.mode,
                              key=pending.key[:12]):
                    tracer = make_tracer(job, pending.key)
                    result = execute_job(job, engine=self._engine_for(job),
                                         observer=tracer)
                    return result, tracer
            args = ()
        handle, created = self.scheduler.submit(
            pending.key, fn, *args,
            timeout=job.timeout_s, retries=job.retries)
        pending.handle = handle
        if created:
            self.telemetry.count("jobs_run")
        self._notify("scheduled", job, pending.key, created=created)
        handle.add_done_callback(
            lambda done: self._complete(pending, done))
        return ServiceResult(job, "run", pending=pending)

    def _engine_for(self, job: FlowJob) -> FlowEngine:
        if self.engine._strategy_override is not None:
            return self.engine
        if job.intensity_threshold == self.engine.intensity_threshold:
            return self.engine
        return FlowEngine(intensity_threshold=job.intensity_threshold)

    # ------------------------------------------------------------------
    def _complete(self, pending: _Pending, handle: JobHandle) -> None:
        """Driver-thread callback: convert, persist, account, release."""
        job = pending.job
        if handle.status is not JobStatus.SUCCEEDED:
            if handle.status is JobStatus.QUARANTINED:
                self.dead_letter.add(
                    pending.key, job.spec(),
                    reason=str(handle.error), attempts=handle.attempts,
                    crashes=handle.crashes)
                self.telemetry.count("dead_letter")
                # each dead-letter is an admission-breaker strike
                self._overload.record_failure()
            self.telemetry.count("jobs_failed")
            self.telemetry.record_job(JobTelemetry(
                key=pending.key, app=job.app, mode=job.mode,
                source="run", status=handle.status.value,
                wall_s=handle.wall_s, attempts=handle.attempts))
            with self._lock:
                self._pending.pop(pending.key, None)
            pending.resolve(error=handle.error)
            self._notify("done", job, pending.key,
                         status=handle.status.value,
                         attempts=handle.attempts, wall_s=handle.wall_s,
                         error=str(handle.error) if handle.error else None)
            return
        raw = handle._result
        try:
            if isinstance(raw, dict):          # process-pool payload
                value = result_from_dict(raw["result"])
                result_dict = raw["result"]
                trace_dict = raw.get("telemetry") or {}
                tracer = Tracer.from_dict(trace_dict)
                if raw.get("obs_spans"):
                    obs.adopt_spans(raw["obs_spans"], pending.obs_ctx)
            else:                              # in-process (result, tracer)
                value, tracer = raw
                result_dict = None
                trace_dict = tracer.to_dict()
            if self.cache is not None and self._cacheable:
                if result_dict is None:
                    result_dict = result_to_dict(value,
                                                 include_sources=True)
                try:
                    self.cache.put(pending.key, job.spec(), result_dict,
                                   telemetry=trace_dict)
                    self.telemetry.count("cache_write")
                except (faults.InjectedFault, OSError) as exc:
                    # degrade to an uncached result: the computed value
                    # must never be lost to a persistence failure
                    obs.event("service.cache_write_failed",
                              key=pending.key[:12],
                              error=type(exc).__name__)
                    self.telemetry.count("cache_write_failed")
            self._overload.record_success()
            self.telemetry.record_job(JobTelemetry(
                key=pending.key, app=job.app, mode=job.mode,
                source="run", status="ok",
                wall_s=handle.wall_s, attempts=handle.attempts,
                spans=tracer.spans, branches=tracer.branches))
            with self._lock:
                if self._cacheable:
                    self._memory[pending.key] = value
                self._pending.pop(pending.key, None)
            pending.resolve(value=value)
            self._notify("done", job, pending.key, status="succeeded",
                         attempts=handle.attempts, wall_s=handle.wall_s,
                         error=None)
        except BaseException as exc:
            with self._lock:
                self._pending.pop(pending.key, None)
            pending.resolve(error=exc)
            self._notify("done", job, pending.key, status="failed",
                         attempts=handle.attempts, wall_s=handle.wall_s,
                         error=f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    def run(self, job: FlowJob, timeout: Optional[float] = None) -> Any:
        """Submit and block for one job's result."""
        return self.submit(job).result(timeout)

    def run_pair(self, app: str, mode: str,
                 timeout: Optional[float] = None) -> Any:
        return self.run(self.job_for(app, mode), timeout=timeout)

    def submit_many(self, jobs: Iterable[FlowJob]) -> List[ServiceResult]:
        """Submit jobs highest-priority first."""
        ordered = sorted(jobs, key=lambda j: (-j.priority, j.app, j.mode))
        return [self.submit(job) for job in ordered]

    def stream(self, jobs: Iterable[FlowJob],
               timeout: Optional[float] = None
               ) -> Iterable[Tuple[ServiceResult, Any, Optional[BaseException]]]:
        """Yield ``(submission, result, error)`` in completion order.

        Cached results come first (they are already complete); executed
        jobs follow as the pool finishes them.
        """
        submissions = self.submit_many(jobs)
        ready = [s for s in submissions if s.done()]
        waiting = [s for s in submissions if not s.done()]
        for submission in ready:
            yield self._outcome(submission, timeout=0)
        if not waiting:
            return
        import queue as _queue

        done: "_queue.Queue[ServiceResult]" = _queue.Queue()
        for submission in waiting:
            handle = submission._pending.handle
            if handle is not None:
                handle.add_done_callback(lambda _h, s=submission:
                                         done.put(s))
            else:
                # submission joined a job whose handle was still being
                # registered; _outcome blocks on its event instead
                done.put(submission)
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        for _ in range(len(waiting)):
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            submission = done.get(timeout=remaining)
            yield self._outcome(submission, timeout=remaining)

    @staticmethod
    def _outcome(submission: ServiceResult,
                 timeout: Optional[float]):
        try:
            return submission, submission.result(timeout), None
        except BaseException as exc:
            return submission, None, exc

    # ------------------------------------------------------------------
    def close(self, cancel_pending: bool = False) -> None:
        self.scheduler.shutdown(wait=not cancel_pending,
                                cancel_pending=cancel_pending)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, *exc):
        # on an exception (e.g. KeyboardInterrupt mid-batch) drop queued
        # jobs rather than draining them; running attempts still finish
        self.close(cancel_pending=exc_type is not None)
        return False
