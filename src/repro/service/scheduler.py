"""Worker-pool job scheduler: parallelism, dedup, timeout, retry,
crash containment.

Two executor layers:

- a **work pool** (``ProcessPoolExecutor`` when requested/available,
  ``ThreadPoolExecutor`` fallback) that runs the job payloads;
- a **driver pool** of lightweight threads, one per in-flight job,
  that wraps each job with the control policy: per-attempt timeout,
  bounded retry with exponential backoff, and cancellation checks
  between attempts.

Identical jobs (same content key) submitted while one is in flight
join the existing :class:`JobHandle` instead of running twice -- the
persistent cache handles the across-run case, this handles the
within-run case.

Timeout semantics: a timed-out attempt is *abandoned* (neither threads
nor pool processes can be killed mid-task portably); the handle still
resolves promptly with :class:`JobTimeout` so callers never block on a
hung job.  An abandoned attempt that is still running occupies a pool
slot, tracked by the ``repro_scheduler_abandoned_slots`` gauge until
the stuck callable returns.  In **process** mode the slot is
*reclaimed*: the pool is recycled (fresh workers swapped in, the old
workers terminated), so a hung payload cannot starve the pool --
attempts that were in flight on the old pool are re-queued through the
crash-recovery path below.  In thread mode the gauge is the only
remedy (threads cannot be killed).

Worker-crash containment: a dead worker process surfaces as
``BrokenProcessPool`` (on submit or while waiting on an attempt).  The
scheduler rebuilds the pool exactly once per breakage and re-queues
the interrupted attempt *without* consuming one of the job's regular
retries -- the job did not fail, the worker did.  A payload whose
attempts crash the pool more than ``crash_retries`` times is presumed
poisonous and resolved with :class:`JobQuarantined`; the service layer
moves such jobs to the dead-letter queue and excludes them from
further scheduling.

Flow execution is pure Python, so the thread pool gives concurrency
but not CPU parallelism (GIL); the process pool gives real parallelism
on multi-core hosts at the cost of pickling job payloads.  ``mode=
"auto"`` picks processes when more than one worker is requested and
the platform supports it.
"""

from __future__ import annotations

import enum
import queue
import threading
import time
from concurrent.futures import (
    BrokenExecutor, CancelledError, Future, ThreadPoolExecutor,
    TimeoutError as FutureTimeout,
)
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro import obs

_QUEUE_WAIT = obs.REGISTRY.histogram(
    "repro_scheduler_queue_wait_seconds",
    "delay between job submission and its first attempt starting")
_ATTEMPTS = obs.REGISTRY.counter(
    "repro_scheduler_attempts_total",
    "job attempts by per-attempt outcome",
    ("outcome",))
_JOBS = obs.REGISTRY.counter(
    "repro_scheduler_jobs_total",
    "jobs by terminal status",
    ("status",))
_DEDUP = obs.REGISTRY.counter(
    "repro_scheduler_dedup_joins_total",
    "submissions that joined an identical in-flight job")
_ABANDONED = obs.REGISTRY.gauge(
    "repro_scheduler_abandoned_slots",
    "pool slots occupied by timed-out attempts still running")
_POOL_REBUILDS = obs.REGISTRY.counter(
    "repro_scheduler_pool_rebuilds_total",
    "work-pool replacements by trigger",
    ("reason",))


class JobStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    TIMEOUT = "timeout"
    CANCELLED = "cancelled"
    QUARANTINED = "quarantined"


class JobError(Exception):
    """Base of terminal job outcomes raised by :meth:`JobHandle.result`."""


class JobFailed(JobError):
    """The job raised on every allowed attempt (cause chained)."""


class JobTimeout(JobError):
    """Every allowed attempt exceeded its time budget.

    When the timeout comes from a *client-side* wait budget
    (``ReproClient.max_wait_s``), ``status``/``attempts`` carry the
    job's last observed telemetry -- mirroring
    :class:`JobResultPending` -- so the message says where the job was
    when the client gave up, not just that it did.
    """

    def __init__(self, message: str, status: Optional[str] = None,
                 attempts: Optional[int] = None):
        if status is not None or attempts is not None:
            message += (f" (last observed status={status}, "
                        f"attempts={attempts})")
        super().__init__(message)
        self.status = status
        self.attempts = attempts


class JobCancelled(JobError):
    """The job was cancelled before it produced a result."""


class JobQuarantined(JobError):
    """The job's payload crashed pool workers past the crash budget.

    The service layer dead-letters jobs that resolve this way; see
    ``python -m repro service dead-letter``.
    """

    def __init__(self, message: str, key: str = "", crashes: int = 0):
        super().__init__(message)
        self.key = key
        self.crashes = crashes


# ``concurrent.futures.TimeoutError`` is the builtin ``TimeoutError``
# from 3.11 on but a distinct class before; base the pending error on
# both so every caller's ``except TimeoutError`` keeps working.
_PENDING_BASES = ((FutureTimeout,) if FutureTimeout is TimeoutError
                  else (FutureTimeout, TimeoutError))


class JobResultPending(*_PENDING_BASES):
    """``result(timeout)`` expired but the job is still in flight.

    Unlike a bare ``TimeoutError`` this carries the job's live
    telemetry -- key, status, attempt count, wall time so far -- so
    callers (and batch error rows) can report something actionable.
    """

    def __init__(self, key: str, status: str, attempts: int,
                 wait_s: Optional[float], label: str = ""):
        what = label or f"job {key[:12]}"
        super().__init__(
            f"{what} not done within {wait_s}s "
            f"(status={status}, attempts={attempts})")
        self.key = key
        self.status = status
        self.attempts = attempts
        self.wait_s = wait_s


class JobHandle:
    """Future-like view of one scheduled job."""

    def __init__(self, key: str):
        self.key = key
        self.status = JobStatus.PENDING
        self.attempts = 0
        self.crashes = 0
        self.error: Optional[JobError] = None
        self.wall_s: float = 0.0
        self.submitted_at: float = time.perf_counter()
        self.queue_wait_s: float = 0.0
        self._result: Any = None
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._callbacks: List[Callable[["JobHandle"], None]] = []
        self._cancel_requested = False
        self._driver_future: Optional[Future] = None
        self._attempt_future: Optional[Future] = None

    # ------------------------------------------------------------------
    def done(self) -> bool:
        return self._done.is_set()

    def cancelled(self) -> bool:
        return self.status is JobStatus.CANCELLED

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the outcome; raises the terminal JobError on failure.

        When the wait itself expires the raised
        :class:`JobResultPending` carries the job's current status and
        attempt count (it is still a ``TimeoutError``).
        """
        if not self._done.wait(timeout):
            raise JobResultPending(self.key, self.status.value,
                                   self.attempts, timeout)
        if self.status is JobStatus.SUCCEEDED:
            return self._result
        raise self.error

    def cancel(self) -> bool:
        """Request cancellation; True if the job will not produce a result.

        A queued job is cancelled immediately; a running job is
        interrupted at the next attempt boundary (the in-flight attempt
        is abandoned, see module docstring).
        """
        with self._lock:
            if self.done():
                return self.cancelled()
            self._cancel_requested = True
            driver = self._driver_future
            attempt = self._attempt_future
        if driver is not None and driver.cancel():
            # never started: resolve here, the driver will not run
            self._finish(JobStatus.CANCELLED,
                         error=JobCancelled(f"job {self.key[:12]} "
                                            f"cancelled before start"))
            return True
        if attempt is not None:
            attempt.cancel()
        return True

    def add_done_callback(self,
                          callback: Callable[["JobHandle"], None]) -> None:
        with self._lock:
            if not self.done():
                self._callbacks.append(callback)
                return
        callback(self)

    # ------------------------------------------------------------------
    def _finish(self, status: JobStatus, result: Any = None,
                error: Optional[JobError] = None,
                wall_s: float = 0.0) -> None:
        with self._lock:
            if self.done():
                return
            self.status = status
            self._result = result
            self.error = error
            self.wall_s = wall_s
            callbacks = list(self._callbacks)
            self._callbacks.clear()
            self._done.set()
        for callback in callbacks:
            callback(self)

    def __repr__(self):
        return (f"<JobHandle {self.key[:12]} {self.status.value} "
                f"attempts={self.attempts}>")


def _make_work_pool(mode: str, workers: int):
    """Build the work executor; returns (executor, resolved_mode, note)."""
    if mode not in ("thread", "process", "auto"):
        raise ValueError(f"unknown scheduler mode {mode!r}")
    want_processes = (mode == "process"
                      or (mode == "auto" and workers > 1))
    if want_processes:
        try:
            import multiprocessing as mp
            from concurrent.futures import ProcessPoolExecutor

            if "fork" in mp.get_all_start_methods():
                ctx = mp.get_context("fork")
            else:
                ctx = mp.get_context()
            return (ProcessPoolExecutor(max_workers=workers,
                                        mp_context=ctx),
                    "process", None)
        except (ImportError, OSError, NotImplementedError,
                PermissionError, ValueError) as exc:
            note = (f"process pool unavailable "
                    f"({type(exc).__name__}: {exc}); using threads")
            return (ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-work"),
                "thread", note)
    return (ThreadPoolExecutor(max_workers=workers,
                               thread_name_prefix="repro-work"),
            "thread", None)


class JobScheduler:
    """Runs keyed jobs on a bounded worker pool with retry/timeout."""

    def __init__(self, workers: int = 1, mode: str = "auto",
                 default_timeout: Optional[float] = None,
                 default_retries: int = 0,
                 backoff_s: float = 0.05,
                 backoff_factor: float = 2.0,
                 max_backoff_s: float = 2.0,
                 crash_retries: int = 2,
                 reclaim_timeouts: bool = True):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if crash_retries < 0:
            raise ValueError(
                f"crash_retries must be >= 0, got {crash_retries}")
        self.workers = workers
        self.default_timeout = default_timeout
        self.default_retries = default_retries
        self.backoff_s = backoff_s
        self.backoff_factor = backoff_factor
        self.max_backoff_s = max_backoff_s
        #: times one job's payload may crash the pool before quarantine
        self.crash_retries = crash_retries
        #: recycle the process pool when a timed-out attempt hangs
        self.reclaim_timeouts = reclaim_timeouts
        self._pool, self.mode, self.fallback_note = \
            _make_work_pool(mode, workers)
        self._drivers = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-drive")
        self._lock = threading.Lock()
        self._inflight: Dict[str, JobHandle] = {}
        self.dedup_joins = 0
        self.pool_rebuilds = 0
        self._closed = False

    @property
    def inflight(self) -> int:
        """Jobs currently queued or running (dedup-joined jobs count
        once)."""
        with self._lock:
            return len(self._inflight)

    # ------------------------------------------------------------------
    def submit(self, key: str, fn: Callable, *args,
               timeout: Optional[float] = None,
               retries: Optional[int] = None,
               **kwargs) -> Tuple[JobHandle, bool]:
        """Schedule ``fn(*args, **kwargs)`` under ``key``.

        Returns ``(handle, created)``; ``created`` is False when an
        identical job was already in flight and this call joined it.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is shut down")
            existing = self._inflight.get(key)
            if existing is not None and not existing.done():
                self.dedup_joins += 1
                _DEDUP.inc()
                return existing, False
            handle = JobHandle(key)
            self._inflight[key] = handle
        handle.add_done_callback(self._retire)
        timeout = self.default_timeout if timeout is None else timeout
        retries = self.default_retries if retries is None else retries
        driver = self._drivers.submit(
            self._drive, handle, fn, args, kwargs, timeout, retries)
        with handle._lock:
            handle._driver_future = driver
        # cancel() may have raced the driver registration
        if handle._cancel_requested and driver.cancel():
            handle._finish(JobStatus.CANCELLED,
                           error=JobCancelled(f"job {key[:12]} cancelled"))
        return handle, True

    def _retire(self, handle: JobHandle) -> None:
        with self._lock:
            if self._inflight.get(handle.key) is handle:
                del self._inflight[handle.key]

    # ------------------------------------------------------------------
    # Pool replacement (worker death / hung-slot reclamation).
    # ------------------------------------------------------------------
    def _current_pool(self):
        with self._lock:
            return self._pool

    def _replace_pool(self, dead, reason: str,
                      kill_workers: bool = False) -> bool:
        """Swap a fresh work pool in for ``dead``; idempotent per pool.

        Several driver threads may observe the same breakage; only the
        first to arrive rebuilds (the swap is compare-and-set on the
        pool object).  With ``kill_workers`` the old pool's worker
        processes are terminated best-effort -- that is what turns a
        hung-slot recycle into a reclaimed slot, and it deliberately
        breaks the old pool so any attempt still riding it re-queues
        through the crash path onto the new pool.
        """
        with self._lock:
            if self._closed or self._pool is not dead:
                return False
            self._pool, _resolved, _note = _make_work_pool(
                self.mode, self.workers)
            self.pool_rebuilds += 1
        _POOL_REBUILDS.inc(reason=reason)
        obs.event("scheduler.pool_rebuild", reason=reason)
        if kill_workers:
            procs = getattr(dead, "_processes", None)
            if procs:
                for proc in list(procs.values()):
                    try:
                        proc.terminate()
                    except Exception:
                        pass
        try:
            dead.shutdown(wait=False)
        except Exception:
            pass
        return True

    # ------------------------------------------------------------------
    def _drive(self, handle: JobHandle, fn: Callable, args, kwargs,
               timeout: Optional[float], retries: int) -> None:
        start = time.perf_counter()
        handle.queue_wait_s = start - handle.submitted_at
        _QUEUE_WAIT.observe(handle.queue_wait_s)
        last_error: Optional[JobError] = None
        attempts_allowed = retries + 1
        attempt = 0       # failures consumed against the retry budget
        tries = 0         # actual submissions (crash re-queues included)
        crashes = 0
        while attempt < attempts_allowed:
            if handle._cancel_requested:
                last_error = JobCancelled(
                    f"job {handle.key[:12]} cancelled after "
                    f"{tries} attempt{'s' if tries != 1 else ''}")
                break
            handle.status = JobStatus.RUNNING
            tries += 1
            handle.attempts = tries
            pool = self._current_pool()
            try:
                future = pool.submit(fn, *args, **kwargs)
            except BrokenExecutor:
                # the pool died before this attempt even queued
                crash = self._on_crash(handle, pool, crashes)
                crashes = handle.crashes = crash[0]
                if crash[1] is not None:
                    last_error = crash[1]
                    break
                continue
            except RuntimeError as exc:       # pool shut down under us
                last_error = JobCancelled(
                    f"job {handle.key[:12]}: {exc}")
                break
            with handle._lock:
                handle._attempt_future = future
            try:
                result = future.result(timeout)
                if handle._cancel_requested:
                    # cancel() already promised "no result" to its
                    # caller; the attempt racing to completion must
                    # not un-cancel the job
                    _ATTEMPTS.inc(outcome="cancelled")
                    last_error = JobCancelled(
                        f"job {handle.key[:12]} cancelled while running")
                    break
                _ATTEMPTS.inc(outcome="ok")
                _JOBS.inc(status="succeeded")
                handle._finish(JobStatus.SUCCEEDED, result=result,
                               wall_s=time.perf_counter() - start)
                return
            except FutureTimeout:
                if not future.cancel():
                    # the attempt is genuinely running: its slot is
                    # occupied until the stuck callable returns
                    _ABANDONED.inc()
                    future.add_done_callback(lambda _f: _ABANDONED.dec())
                    if self.mode == "process" and self.reclaim_timeouts:
                        self._replace_pool(pool, reason="timeout-reclaim",
                                           kill_workers=True)
                _ATTEMPTS.inc(outcome="timeout")
                last_error = JobTimeout(
                    f"job {handle.key[:12]} exceeded {timeout}s "
                    f"(attempt {attempt + 1}/{attempts_allowed})")
            except CancelledError:
                _ATTEMPTS.inc(outcome="cancelled")
                last_error = JobCancelled(
                    f"job {handle.key[:12]} attempt cancelled")
                break
            except BrokenExecutor:
                # a worker died mid-attempt: recover the pool and
                # re-queue without consuming a regular retry
                crash = self._on_crash(handle, pool, crashes)
                crashes = handle.crashes = crash[0]
                if crash[1] is not None:
                    last_error = crash[1]
                    break
                continue
            except BaseException as exc:
                _ATTEMPTS.inc(outcome="error")
                failure = JobFailed(
                    f"job {handle.key[:12]} failed "
                    f"(attempt {attempt + 1}/{attempts_allowed}): {exc!r}")
                failure.__cause__ = exc
                last_error = failure
            attempt += 1
            if attempt < attempts_allowed \
                    and not handle._cancel_requested:
                time.sleep(min(
                    self.backoff_s * self.backoff_factor ** attempt,
                    self.max_backoff_s))
        if handle._cancel_requested \
                and not isinstance(last_error,
                                   (JobCancelled, JobQuarantined)):
            last_error = JobCancelled(
                f"job {handle.key[:12]} cancelled")
        status = (JobStatus.CANCELLED
                  if isinstance(last_error, JobCancelled)
                  else JobStatus.QUARANTINED
                  if isinstance(last_error, JobQuarantined)
                  else JobStatus.TIMEOUT
                  if isinstance(last_error, JobTimeout)
                  else JobStatus.FAILED)
        _JOBS.inc(status=status.value)
        handle._finish(status, error=last_error,
                       wall_s=time.perf_counter() - start)

    def _on_crash(self, handle: JobHandle, pool,
                  crashes: int) -> Tuple[int, Optional[JobError]]:
        """One pool breakage observed by ``handle``'s driver.

        Returns ``(new crash count, terminal error or None)``; None
        means the attempt should be re-queued on the rebuilt pool.
        """
        crashes += 1
        _ATTEMPTS.inc(outcome="crash")
        obs.event("scheduler.worker_crash", key=handle.key[:12],
                  crashes=crashes)
        self._replace_pool(pool, reason="worker-crash")
        if crashes > self.crash_retries:
            return crashes, JobQuarantined(
                f"job {handle.key[:12]} crashed the worker pool "
                f"{crashes} times (budget {self.crash_retries}); "
                f"quarantined", key=handle.key, crashes=crashes)
        return crashes, None

    # ------------------------------------------------------------------
    @staticmethod
    def as_completed(handles: Iterable[JobHandle],
                     timeout: Optional[float] = None
                     ) -> Iterator[JobHandle]:
        """Yield handles in completion order (like futures.as_completed)."""
        handles = list(handles)
        done: "queue.Queue[JobHandle]" = queue.Queue()
        for handle in handles:
            handle.add_done_callback(done.put)
        deadline = None if timeout is None else time.monotonic() + timeout
        for _ in range(len(handles)):
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            try:
                yield done.get(timeout=remaining)
            except queue.Empty:
                raise FutureTimeout(
                    f"jobs not done within {timeout}s") from None

    def shutdown(self, wait: bool = True,
                 cancel_pending: bool = False) -> None:
        with self._lock:
            self._closed = True
            inflight = list(self._inflight.values())
            pool = self._pool
        if cancel_pending:
            for handle in inflight:
                handle.cancel()
        self._drivers.shutdown(wait=wait)
        pool.shutdown(wait=wait)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown(wait=True)
        return False
