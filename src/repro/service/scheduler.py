"""Worker-pool job scheduler: parallelism, dedup, timeout, retry.

Two executor layers:

- a **work pool** (``ProcessPoolExecutor`` when requested/available,
  ``ThreadPoolExecutor`` fallback) that runs the job payloads;
- a **driver pool** of lightweight threads, one per in-flight job,
  that wraps each job with the control policy: per-attempt timeout,
  bounded retry with exponential backoff, and cancellation checks
  between attempts.

Identical jobs (same content key) submitted while one is in flight
join the existing :class:`JobHandle` instead of running twice -- the
persistent cache handles the across-run case, this handles the
within-run case.

Timeout semantics: a timed-out attempt is *abandoned* (neither threads
nor pool processes can be killed mid-task portably); the slot frees up
when the stuck callable returns.  The handle still resolves promptly
with :class:`JobTimeout` so callers never block on a hung job.

Flow execution is pure Python, so the thread pool gives concurrency
but not CPU parallelism (GIL); the process pool gives real parallelism
on multi-core hosts at the cost of pickling job payloads.  ``mode=
"auto"`` picks processes when more than one worker is requested and
the platform supports it.
"""

from __future__ import annotations

import enum
import queue
import threading
import time
from concurrent.futures import (
    CancelledError, Future, ThreadPoolExecutor,
    TimeoutError as FutureTimeout,
)
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro import obs

_QUEUE_WAIT = obs.REGISTRY.histogram(
    "repro_scheduler_queue_wait_seconds",
    "delay between job submission and its first attempt starting")
_ATTEMPTS = obs.REGISTRY.counter(
    "repro_scheduler_attempts_total",
    "job attempts by per-attempt outcome",
    ("outcome",))
_JOBS = obs.REGISTRY.counter(
    "repro_scheduler_jobs_total",
    "jobs by terminal status",
    ("status",))
_DEDUP = obs.REGISTRY.counter(
    "repro_scheduler_dedup_joins_total",
    "submissions that joined an identical in-flight job")


class JobStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    TIMEOUT = "timeout"
    CANCELLED = "cancelled"


class JobError(Exception):
    """Base of terminal job outcomes raised by :meth:`JobHandle.result`."""


class JobFailed(JobError):
    """The job raised on every allowed attempt (cause chained)."""


class JobTimeout(JobError):
    """Every allowed attempt exceeded its time budget."""


class JobCancelled(JobError):
    """The job was cancelled before it produced a result."""


class JobHandle:
    """Future-like view of one scheduled job."""

    def __init__(self, key: str):
        self.key = key
        self.status = JobStatus.PENDING
        self.attempts = 0
        self.error: Optional[JobError] = None
        self.wall_s: float = 0.0
        self.submitted_at: float = time.perf_counter()
        self.queue_wait_s: float = 0.0
        self._result: Any = None
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._callbacks: List[Callable[["JobHandle"], None]] = []
        self._cancel_requested = False
        self._driver_future: Optional[Future] = None
        self._attempt_future: Optional[Future] = None

    # ------------------------------------------------------------------
    def done(self) -> bool:
        return self._done.is_set()

    def cancelled(self) -> bool:
        return self.status is JobStatus.CANCELLED

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the outcome; raises the terminal JobError on failure."""
        if not self._done.wait(timeout):
            raise FutureTimeout(
                f"job {self.key[:12]} not done within {timeout}s")
        if self.status is JobStatus.SUCCEEDED:
            return self._result
        raise self.error

    def cancel(self) -> bool:
        """Request cancellation; True if the job will not produce a result.

        A queued job is cancelled immediately; a running job is
        interrupted at the next attempt boundary (the in-flight attempt
        is abandoned, see module docstring).
        """
        with self._lock:
            if self.done():
                return self.cancelled()
            self._cancel_requested = True
            driver = self._driver_future
            attempt = self._attempt_future
        if driver is not None and driver.cancel():
            # never started: resolve here, the driver will not run
            self._finish(JobStatus.CANCELLED,
                         error=JobCancelled(f"job {self.key[:12]} "
                                            f"cancelled before start"))
            return True
        if attempt is not None:
            attempt.cancel()
        return True

    def add_done_callback(self,
                          callback: Callable[["JobHandle"], None]) -> None:
        with self._lock:
            if not self.done():
                self._callbacks.append(callback)
                return
        callback(self)

    # ------------------------------------------------------------------
    def _finish(self, status: JobStatus, result: Any = None,
                error: Optional[JobError] = None,
                wall_s: float = 0.0) -> None:
        with self._lock:
            if self.done():
                return
            self.status = status
            self._result = result
            self.error = error
            self.wall_s = wall_s
            callbacks = list(self._callbacks)
            self._callbacks.clear()
            self._done.set()
        for callback in callbacks:
            callback(self)

    def __repr__(self):
        return (f"<JobHandle {self.key[:12]} {self.status.value} "
                f"attempts={self.attempts}>")


def _make_work_pool(mode: str, workers: int):
    """Build the work executor; returns (executor, resolved_mode, note)."""
    if mode not in ("thread", "process", "auto"):
        raise ValueError(f"unknown scheduler mode {mode!r}")
    want_processes = (mode == "process"
                      or (mode == "auto" and workers > 1))
    if want_processes:
        try:
            import multiprocessing as mp
            from concurrent.futures import ProcessPoolExecutor

            if "fork" in mp.get_all_start_methods():
                ctx = mp.get_context("fork")
            else:
                ctx = mp.get_context()
            return (ProcessPoolExecutor(max_workers=workers,
                                        mp_context=ctx),
                    "process", None)
        except (ImportError, OSError, NotImplementedError,
                PermissionError, ValueError) as exc:
            note = (f"process pool unavailable "
                    f"({type(exc).__name__}: {exc}); using threads")
            return (ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-work"),
                "thread", note)
    return (ThreadPoolExecutor(max_workers=workers,
                               thread_name_prefix="repro-work"),
            "thread", None)


class JobScheduler:
    """Runs keyed jobs on a bounded worker pool with retry/timeout."""

    def __init__(self, workers: int = 1, mode: str = "auto",
                 default_timeout: Optional[float] = None,
                 default_retries: int = 0,
                 backoff_s: float = 0.05,
                 backoff_factor: float = 2.0,
                 max_backoff_s: float = 2.0):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.default_timeout = default_timeout
        self.default_retries = default_retries
        self.backoff_s = backoff_s
        self.backoff_factor = backoff_factor
        self.max_backoff_s = max_backoff_s
        self._pool, self.mode, self.fallback_note = \
            _make_work_pool(mode, workers)
        self._drivers = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-drive")
        self._lock = threading.Lock()
        self._inflight: Dict[str, JobHandle] = {}
        self.dedup_joins = 0
        self._closed = False

    # ------------------------------------------------------------------
    def submit(self, key: str, fn: Callable, *args,
               timeout: Optional[float] = None,
               retries: Optional[int] = None,
               **kwargs) -> Tuple[JobHandle, bool]:
        """Schedule ``fn(*args, **kwargs)`` under ``key``.

        Returns ``(handle, created)``; ``created`` is False when an
        identical job was already in flight and this call joined it.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is shut down")
            existing = self._inflight.get(key)
            if existing is not None and not existing.done():
                self.dedup_joins += 1
                _DEDUP.inc()
                return existing, False
            handle = JobHandle(key)
            self._inflight[key] = handle
        handle.add_done_callback(self._retire)
        timeout = self.default_timeout if timeout is None else timeout
        retries = self.default_retries if retries is None else retries
        driver = self._drivers.submit(
            self._drive, handle, fn, args, kwargs, timeout, retries)
        with handle._lock:
            handle._driver_future = driver
        # cancel() may have raced the driver registration
        if handle._cancel_requested and driver.cancel():
            handle._finish(JobStatus.CANCELLED,
                           error=JobCancelled(f"job {key[:12]} cancelled"))
        return handle, True

    def _retire(self, handle: JobHandle) -> None:
        with self._lock:
            if self._inflight.get(handle.key) is handle:
                del self._inflight[handle.key]

    # ------------------------------------------------------------------
    def _drive(self, handle: JobHandle, fn: Callable, args, kwargs,
               timeout: Optional[float], retries: int) -> None:
        start = time.perf_counter()
        handle.queue_wait_s = start - handle.submitted_at
        _QUEUE_WAIT.observe(handle.queue_wait_s)
        last_error: Optional[JobError] = None
        attempts_allowed = retries + 1
        for attempt in range(attempts_allowed):
            if handle._cancel_requested:
                last_error = JobCancelled(
                    f"job {handle.key[:12]} cancelled after "
                    f"{attempt} attempt{'s' if attempt != 1 else ''}")
                break
            handle.status = JobStatus.RUNNING
            handle.attempts = attempt + 1
            try:
                future = self._pool.submit(fn, *args, **kwargs)
            except RuntimeError as exc:       # pool shut down under us
                last_error = JobCancelled(
                    f"job {handle.key[:12]}: {exc}")
                break
            with handle._lock:
                handle._attempt_future = future
            try:
                result = future.result(timeout)
                _ATTEMPTS.inc(outcome="ok")
                _JOBS.inc(status="succeeded")
                handle._finish(JobStatus.SUCCEEDED, result=result,
                               wall_s=time.perf_counter() - start)
                return
            except FutureTimeout:
                future.cancel()
                _ATTEMPTS.inc(outcome="timeout")
                last_error = JobTimeout(
                    f"job {handle.key[:12]} exceeded {timeout}s "
                    f"(attempt {attempt + 1}/{attempts_allowed})")
            except CancelledError:
                _ATTEMPTS.inc(outcome="cancelled")
                last_error = JobCancelled(
                    f"job {handle.key[:12]} attempt cancelled")
                break
            except BaseException as exc:
                _ATTEMPTS.inc(outcome="error")
                failure = JobFailed(
                    f"job {handle.key[:12]} failed "
                    f"(attempt {attempt + 1}/{attempts_allowed}): {exc!r}")
                failure.__cause__ = exc
                last_error = failure
            if attempt + 1 < attempts_allowed \
                    and not handle._cancel_requested:
                time.sleep(min(
                    self.backoff_s * self.backoff_factor ** attempt,
                    self.max_backoff_s))
        if handle._cancel_requested \
                and not isinstance(last_error, JobCancelled):
            last_error = JobCancelled(
                f"job {handle.key[:12]} cancelled")
        status = (JobStatus.CANCELLED
                  if isinstance(last_error, JobCancelled)
                  else JobStatus.TIMEOUT
                  if isinstance(last_error, JobTimeout)
                  else JobStatus.FAILED)
        handle._finish(status, error=last_error,
                       wall_s=time.perf_counter() - start)

    # ------------------------------------------------------------------
    @staticmethod
    def as_completed(handles: Iterable[JobHandle],
                     timeout: Optional[float] = None
                     ) -> Iterator[JobHandle]:
        """Yield handles in completion order (like futures.as_completed)."""
        handles = list(handles)
        done: "queue.Queue[JobHandle]" = queue.Queue()
        for handle in handles:
            handle.add_done_callback(done.put)
        deadline = None if timeout is None else time.monotonic() + timeout
        for _ in range(len(handles)):
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            try:
                yield done.get(timeout=remaining)
            except queue.Empty:
                raise FutureTimeout(
                    f"jobs not done within {timeout}s") from None

    def shutdown(self, wait: bool = True,
                 cancel_pending: bool = False) -> None:
        with self._lock:
            self._closed = True
            inflight = list(self._inflight.values())
        if cancel_pending:
            for handle in inflight:
                handle.cancel()
        self._drivers.shutdown(wait=wait)
        self._pool.shutdown(wait=wait)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown(wait=True)
        return False
