"""Flow telemetry: spans, per-job records, fleet aggregation.

The FlowEngine observer hooks (``FlowObserver`` in ``repro.flow.task``)
emit one span per executed task -- task name, A/T/CG/O kind, Fig. 4
scope, start timestamp, wall time, error detail -- and one event per
PSA branch decision.  :class:`Tracer` collects them for a single flow
run; the service rolls the per-job traces plus cache/dedup counters
into a :class:`FleetTelemetry` that renders as ASCII for the CLI or as
JSON for dashboards.

This module sits *on* the ``repro.obs`` span model: a
:class:`TaskSpan` is the flow-observer view of the same task the
``repro.obs`` layer traces (``span_id`` links the two when tracing is
on), and every ``FleetTelemetry.count`` feeds the process-wide
``repro.obs`` metrics registry
(``repro_service_events_total{event=...}``) without changing the
counter API the service and its tests consume.

Everything here is plain data + a thread-safe aggregator; spans cross
the process-pool boundary as dicts (``to_dict``/``from_dict``, with
``from_dict`` accepting dicts written before the ``t0``/``error``
fields existed).
"""

from __future__ import annotations

import json
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import obs
from repro.flow.task import FlowObserver

_SERVICE_EVENTS = obs.REGISTRY.counter(
    "repro_service_events_total",
    "design-service cache/dedup/run events (mirrors "
    "FleetTelemetry.counters)",
    ("event",))
_JOB_WALL = obs.REGISTRY.histogram(
    "repro_service_job_wall_seconds",
    "per-job wall time by result source",
    ("source",))

#: printable order of the Fig. 4 task kinds
KIND_ORDER = ("A", "T", "CG", "O")
KIND_NAMES = {"A": "analysis", "T": "transform",
              "CG": "codegen", "O": "optimisation"}


@dataclass
class TaskSpan:
    """One executed flow task.

    ``t0`` (monotonic, epoch-aligned start timestamp), ``error`` (the
    raising exception as ``"ExcType: message"``) and ``span_id`` (the
    ``repro.obs`` span recorded for the same task, when tracing is on)
    are optional: dicts cached before these fields existed still load.
    """

    name: str
    kind: str            # 'A' | 'T' | 'CG' | 'O'
    scope: str           # Fig. 4 grouping: T-INDEP, GPU, FPGA-S10, ...
    wall_s: float
    status: str = "ok"   # 'ok' | 'error'
    t0: float = 0.0
    error: Optional[str] = None
    span_id: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        data = {"name": self.name, "kind": self.kind, "scope": self.scope,
                "wall_s": self.wall_s, "status": self.status,
                "t0": self.t0}
        if self.error is not None:
            data["error"] = self.error
        if self.span_id is not None:
            data["span_id"] = self.span_id
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TaskSpan":
        return cls(data["name"], data["kind"], data["scope"],
                   data["wall_s"], data.get("status", "ok"),
                   t0=data.get("t0", 0.0), error=data.get("error"),
                   span_id=data.get("span_id"))


@dataclass
class BranchEvent:
    """One recorded PSA branch decision."""

    branch: str
    selected: List[str]
    reasons: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"branch": self.branch, "selected": list(self.selected),
                "reasons": list(self.reasons)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BranchEvent":
        return cls(data["branch"], list(data["selected"]),
                   list(data.get("reasons") or ()))


class Tracer(FlowObserver):
    """Collects spans + branch decisions for one flow run.

    ``on_task`` / ``on_branch_event`` are optional live callbacks fired
    as each record lands (the HTTP server streams them to SSE clients
    while the flow is still running); exceptions in a callback never
    disturb the flow.
    """

    def __init__(self, on_task=None, on_branch_event=None):
        self.spans: List[TaskSpan] = []
        self.branches: List[BranchEvent] = []
        self._on_task = on_task
        self._on_branch_event = on_branch_event

    # -- FlowObserver hooks ---------------------------------------------
    def on_task_end(self, task, ctx, wall_s: float, status: str = "ok",
                    error: Optional[BaseException] = None) -> None:
        current = obs.current_span()
        span = TaskSpan(
            task.name, task.kind.value, task.scope, wall_s, status,
            t0=obs.now() - wall_s,
            error=(f"{type(error).__name__}: {error}"
                   if error is not None else None),
            span_id=current.span_id if current is not None else None)
        self.spans.append(span)
        if self._on_task is not None:
            try:
                self._on_task(span)
            except Exception:
                pass

    def on_branch(self, decision, ctx) -> None:
        event = BranchEvent(decision.branch, list(decision.selected),
                            list(decision.reasons))
        self.branches.append(event)
        if self._on_branch_event is not None:
            try:
                self._on_branch_event(event)
            except Exception:
                pass

    # -- aggregation ----------------------------------------------------
    @property
    def wall_total_s(self) -> float:
        return sum(span.wall_s for span in self.spans)

    def by_kind(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            bucket = out.setdefault(span.kind, {"count": 0, "wall_s": 0.0})
            bucket["count"] += 1
            bucket["wall_s"] += span.wall_s
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {"spans": [s.to_dict() for s in self.spans],
                "branches": [b.to_dict() for b in self.branches]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Tracer":
        tracer = cls()
        tracer.spans = [TaskSpan.from_dict(s)
                        for s in data.get("spans") or ()]
        tracer.branches = [BranchEvent.from_dict(b)
                           for b in data.get("branches") or ()]
        return tracer


@dataclass
class JobTelemetry:
    """Per-job record: where the result came from and what it cost."""

    key: str
    app: str
    mode: str
    source: str          # 'run' | 'cache-disk' | 'cache-memory' | 'inflight'
    status: str          # 'ok' | 'failed' | 'timeout' | 'cancelled'
    wall_s: float = 0.0
    attempts: int = 0
    spans: List[TaskSpan] = field(default_factory=list)
    branches: List[BranchEvent] = field(default_factory=list)

    @property
    def label(self) -> str:
        return f"{self.app}/{self.mode}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key, "app": self.app, "mode": self.mode,
            "source": self.source, "status": self.status,
            "wall_s": self.wall_s, "attempts": self.attempts,
            "spans": [s.to_dict() for s in self.spans],
            "branches": [b.to_dict() for b in self.branches],
        }


class FleetTelemetry:
    """Thread-safe aggregate over every job the service touched.

    ``counters`` carries the cache/dedup accounting the acceptance
    checks read: ``cache_hit_disk``, ``cache_hit_memory``,
    ``cache_miss``, ``cache_write``, ``cache_invalidated``, ``dedup``,
    ``jobs_run``, ``jobs_failed``.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.jobs: List[JobTelemetry] = []
        self.counters: Counter = Counter()

    def count(self, name: str, n: int = 1) -> None:
        _SERVICE_EVENTS.inc(n, event=name)
        with self._lock:
            self.counters[name] += n

    def record_job(self, record: JobTelemetry) -> None:
        _JOB_WALL.observe(record.wall_s, source=record.source)
        with self._lock:
            self.jobs.append(record)

    # -- derived views --------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return (self.counters["cache_hit_disk"]
                + self.counters["cache_hit_memory"])

    def by_kind(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        with self._lock:
            jobs = list(self.jobs)
        for job in jobs:
            for span in job.spans:
                bucket = out.setdefault(span.kind,
                                        {"count": 0, "wall_s": 0.0})
                bucket["count"] += 1
                bucket["wall_s"] += span.wall_s
        return out

    def by_source(self) -> Counter:
        with self._lock:
            return Counter(job.source for job in self.jobs)

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            jobs = [job.to_dict() for job in self.jobs]
            counters = dict(self.counters)
        return {"jobs": jobs, "counters": counters,
                "by_kind": self.by_kind()}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render_ascii(self, top: int = 5) -> str:
        """Human-readable fleet report for the CLI."""
        with self._lock:
            jobs = list(self.jobs)
            counters = Counter(self.counters)
        sources = Counter(job.source for job in jobs)
        failed = sum(1 for job in jobs if job.status != "ok")
        lines = ["== flow service telemetry =="]
        lines.append(
            f"jobs: {len(jobs)} total | run {sources['run']} | "
            f"cache {sources['cache-disk'] + sources['cache-memory']} | "
            f"inflight-joins {sources['inflight']} | failed {failed}")
        lines.append(
            f"cache: {counters['cache_hit_disk']} disk hits / "
            f"{counters['cache_hit_memory']} memory hits / "
            f"{counters['cache_miss']} misses / "
            f"{counters['cache_write']} writes / "
            f"{counters['cache_invalidated']} invalidated")
        kinds = self.by_kind()
        if kinds:
            lines.append("task spans by kind:")
            for kind in KIND_ORDER:
                if kind not in kinds:
                    continue
                bucket = kinds[kind]
                lines.append(
                    f"  {kind:2s} {KIND_NAMES[kind]:13s}"
                    f"{int(bucket['count']):5d} spans"
                    f"{bucket['wall_s']:9.2f}s")
        executed = sorted((job for job in jobs if job.source == "run"),
                          key=lambda job: -job.wall_s)
        if executed:
            lines.append(f"slowest jobs (of {len(executed)} executed):")
            for job in executed[:top]:
                lines.append(
                    f"  {job.label:28s}{job.wall_s:8.2f}s  "
                    f"({job.attempts} attempt"
                    f"{'s' if job.attempts != 1 else ''}, {job.status})")
        return "\n".join(lines)
