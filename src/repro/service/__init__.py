"""repro.service -- the concurrent design-generation service.

Turns PSA-flow execution into a schedulable, observable, cacheable
service (the serving layer the ROADMAP's heavy-traffic north star
needs):

- :mod:`repro.service.jobs` -- :class:`FlowJob` specs with validated
  fields and deterministic content-hash keys;
- :mod:`repro.service.cache` -- :class:`ResultCache`, a persistent
  content-addressed result store with versioned invalidation;
- :mod:`repro.service.scheduler` -- :class:`JobScheduler`, a worker
  pool (processes with thread fallback) with in-flight dedup, per-job
  timeout, bounded retry with backoff, and cancellation;
- :mod:`repro.service.telemetry` -- task spans from the FlowEngine
  observer hooks, per-job records, fleet aggregation and reporters;
- :mod:`repro.service.batch` -- app x mode expansion and streaming
  batch execution;
- :mod:`repro.service.core` -- :class:`DesignService`, the facade
  wiring the layers together.

Quick use::

    from repro.service import DesignService, expand_jobs, run_batch

    with DesignService(cache_dir=".repro-cache", workers=4) as svc:
        report = run_batch(svc, expand_jobs())   # 5 apps x 2 modes
        print(svc.telemetry.render_ascii())
"""

from repro.service.batch import (
    BatchItem, BatchReport, expand_jobs, iter_batch, run_batch,
)
from repro.service.cache import (
    CACHE_FORMAT_VERSION, CacheBackend, CacheStats, ResultCache,
)
from repro.service.core import DesignService, ServiceOverloaded, ServiceResult
from repro.service.jobs import (
    FlowJob, JobValidationError, execute_job, execute_job_payload,
)
from repro.service.scheduler import (
    JobCancelled, JobError, JobFailed, JobHandle, JobQuarantined,
    JobResultPending, JobScheduler, JobStatus, JobTimeout,
)
from repro.service.telemetry import (
    BranchEvent, FleetTelemetry, JobTelemetry, TaskSpan, Tracer,
)

__all__ = [
    "BatchItem", "BatchReport", "expand_jobs", "iter_batch", "run_batch",
    "CACHE_FORMAT_VERSION", "CacheBackend", "CacheStats", "ResultCache",
    "DesignService", "ServiceOverloaded", "ServiceResult",
    "FlowJob", "JobValidationError", "execute_job", "execute_job_payload",
    "JobCancelled", "JobError", "JobFailed", "JobHandle", "JobQuarantined",
    "JobResultPending", "JobScheduler", "JobStatus", "JobTimeout",
    "BranchEvent", "FleetTelemetry", "JobTelemetry", "TaskSpan", "Tracer",
]
