"""Persistent content-addressed store of flow results.

Layout: one JSON file per job key under ``<root>/<key[:2]>/<key>.json``
(two-level fan-out keeps directories small at fleet scale), each
holding::

    {"format": CACHE_FORMAT_VERSION,
     "key": "<sha256>",
     "job": {...job spec...},
     "result": {...flow.serialize.result_to_dict(..., sources=True)...},
     "telemetry": {...spans of the run that produced it...}}

Keys are the :meth:`FlowJob.key` content hashes, which already include
the format version and the app source hash -- so *semantic* staleness
never resolves to an existing file.  The ``format`` field inside the
file guards the other direction: an old process reading a newer (or a
newer process reading an older) entry detects the mismatch, deletes
the file and reports a miss (`stats.invalidated`).

Writes are atomic (temp file + ``os.replace``) so a parallel reader
never sees a half-written entry.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional

from repro.flow.serialize import FlowResultRecord, result_from_dict

#: bump when the serialized result schema or flow semantics change
CACHE_FORMAT_VERSION = 1


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writes: int = 0
    invalidated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Disk-backed result store keyed by job content hash."""

    def __init__(self, root: str):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get_entry(self, key: str) -> Optional[Dict[str, Any]]:
        """The raw cache entry dict, or None on miss/invalidation."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            # unreadable/corrupt entry: drop it and treat as a miss
            self._discard(path)
            self.stats.invalidated += 1
            self.stats.misses += 1
            return None
        if entry.get("format") != CACHE_FORMAT_VERSION:
            self._discard(path)
            self.stats.invalidated += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry

    def get(self, key: str) -> Optional[FlowResultRecord]:
        """Deserialized flow result for ``key``, or None on miss."""
        entry = self.get_entry(key)
        if entry is None:
            return None
        return result_from_dict(entry["result"])

    def put(self, key: str, job_spec: Dict[str, Any],
            result_dict: Dict[str, Any],
            telemetry: Optional[Dict[str, Any]] = None) -> str:
        """Atomically persist one result; returns the file path."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "job": job_spec,
            "result": result_dict,
            "telemetry": telemetry or {},
        }
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            self._discard(tmp)
            raise
        self.stats.writes += 1
        return path

    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json") and not name.startswith(".tmp-"):
                    yield name[:-len(".json")]

    def entries(self) -> Iterator[Dict[str, Any]]:
        """Every readable entry (does not touch hit/miss stats)."""
        for key in self.keys():
            try:
                with open(self._path(key), "r", encoding="utf-8") as fh:
                    yield json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue

    def size_bytes(self) -> int:
        total = 0
        for key in self.keys():
            try:
                total += os.path.getsize(self._path(key))
            except OSError:
                pass
        return total

    def purge(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for key in list(self.keys()):
            self._discard(self._path(key))
            removed += 1
        return removed

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __repr__(self):
        return (f"<ResultCache {self.root} entries={len(self)} "
                f"hits={self.stats.hits} misses={self.stats.misses}>")
