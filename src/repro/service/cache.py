"""Persistent content-addressed store of flow results.

Layout: one JSON file per job key under ``<root>/<key[:2]>/<key>.json``
(two-level fan-out keeps directories small at fleet scale), each
holding::

    {"format": CACHE_FORMAT_VERSION,
     "key": "<sha256>",
     "job": {...job spec...},
     "result": {...flow.serialize.result_to_dict(..., sources=True)...},
     "telemetry": {...spans of the run that produced it...},
     "crc32": <checksum of the canonical entry body>}

Keys are the :meth:`FlowJob.key` content hashes, which already include
the format version and the app source hash -- so *semantic* staleness
never resolves to an existing file.  The ``format`` field inside the
file guards the other direction: an old process reading a newer (or a
newer process reading an older) entry detects the mismatch, deletes
the file and reports a miss (`stats.invalidated`).

Integrity is separate from staleness.  Every entry carries a CRC32 of
its canonical body, verified on read; a truncated, bit-flipped or
otherwise unreadable entry is **quarantined** -- moved to a
``.quarantine/`` sibling directory (evidence kept for diagnosis, never
silently deleted), logged with the offending path, and counted in
``stats.corrupt`` and ``repro_cache_corrupt_total{reason=...}`` --
then reported as a miss so the caller re-runs and re-caches.

Writes are atomic (temp file + ``os.replace``) so a parallel reader
never sees a half-written entry.  With ``REPRO_DURABLE=1`` each write
additionally fsyncs the temp file *before* the rename (and the
directory after), upgrading "no torn entry visible" to "no committed
entry lost on power failure" -- the same knob that puts the router
journal into fsync mode.  The ``cache.read`` / ``cache.write`` /
``cache.fsync`` fault-injection sites let chaos tests drive the
corruption and write-failure paths deterministically
(:mod:`repro.resilience.faults`).
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional

try:                                    # py3.8+: typing.Protocol
    from typing import Protocol, runtime_checkable
except ImportError:                     # pragma: no cover - ancient py
    Protocol = object

    def runtime_checkable(cls):
        return cls

from repro import obs
from repro.flow.serialize import FlowResultRecord, result_from_dict
from repro.resilience import faults

#: bump when the serialized result schema or flow semantics change
#: (2: entries carry a ``crc32`` integrity checksum)
CACHE_FORMAT_VERSION = 2


def _durable() -> bool:
    """``REPRO_DURABLE=1``: fsync writes (checked per call so tests
    and long-lived services can flip it without re-importing)."""
    return os.environ.get("REPRO_DURABLE", "").strip() == "1"


def _fsync_handle(fh) -> None:
    """Push ``fh`` to stable storage (the ``cache.fsync`` fault site)."""
    faults.inject("cache.fsync")
    fh.flush()
    os.fsync(fh.fileno())


def _fsync_dirname(path: str) -> None:
    try:
        fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)

#: sibling directory corrupt entries are moved into (never a key shard:
#: :meth:`ResultCache.keys` skips dot-directories)
QUARANTINE_DIRNAME = ".quarantine"

logger = logging.getLogger(__name__)

_CORRUPT_TOTAL = obs.REGISTRY.counter(
    "repro_cache_corrupt_total",
    "result-cache entries quarantined on failed read verification",
    ("reason",))


def entry_crc32(entry: Dict[str, Any]) -> int:
    """Checksum of the canonical JSON body, ``crc32`` field excluded."""
    body = {k: v for k, v in entry.items() if k != "crc32"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writes: int = 0
    invalidated: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@runtime_checkable
class CacheBackend(Protocol):
    """What :class:`~repro.service.core.DesignService` needs from a
    result store.

    :class:`ResultCache` is the default (CRC-verified disk) backend;
    :class:`repro.fleet.peers.PeerFetchCache` wraps one to consult
    shard-owner nodes on a local miss.  Implementations must keep
    :meth:`put` atomic with respect to concurrent readers, and two
    concurrent :meth:`put` calls for the same key must converge on one
    valid entry (content-hash keys make the writes byte-identical, so
    last-write-wins is idempotent).
    """

    stats: CacheStats

    def get(self, key: str) -> Optional[FlowResultRecord]:
        """Deserialized result for ``key``, or None on miss."""
        ...

    def get_entry(self, key: str) -> Optional[Dict[str, Any]]:
        """The raw, integrity-verified entry dict, or None."""
        ...

    def put(self, key: str, job_spec: Dict[str, Any],
            result_dict: Dict[str, Any],
            telemetry: Optional[Dict[str, Any]] = None) -> str:
        """Persist one computed result; returns a storage locator."""
        ...


class ResultCache:
    """Disk-backed result store keyed by job content hash."""

    def __init__(self, root: str):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get_entry(self, key: str) -> Optional[Dict[str, Any]]:
        """The raw cache entry dict, or None on miss/invalidation."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            faults.inject("cache.read")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except faults.InjectedFault as exc:
            return self._corrupt_miss(path, "injected", exc)
        except json.JSONDecodeError as exc:
            return self._corrupt_miss(path, "json", exc)
        except OSError as exc:
            return self._corrupt_miss(path, "os", exc)
        if entry.get("format") != CACHE_FORMAT_VERSION:
            # stale schema, not damage: no evidence worth keeping
            self._discard(path)
            self.stats.invalidated += 1
            self.stats.misses += 1
            return None
        if entry.get("crc32") != entry_crc32(entry):
            return self._corrupt_miss(
                path, "crc",
                ValueError(f"crc32 mismatch (stored "
                           f"{entry.get('crc32')!r})"))
        self.stats.hits += 1
        return entry

    def get(self, key: str) -> Optional[FlowResultRecord]:
        """Deserialized flow result for ``key``, or None on miss."""
        entry = self.get_entry(key)
        if entry is None:
            return None
        return result_from_dict(entry["result"])

    def put(self, key: str, job_spec: Dict[str, Any],
            result_dict: Dict[str, Any],
            telemetry: Optional[Dict[str, Any]] = None) -> str:
        """Atomically persist one result; returns the file path."""
        faults.inject("cache.write")
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "job": job_spec,
            "result": result_dict,
            "telemetry": telemetry or {},
        }
        entry["crc32"] = entry_crc32(entry)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
                if _durable():
                    # sync BEFORE the rename: a crash between the two
                    # leaves either no entry or a complete one, never
                    # a renamed-but-empty file after power loss
                    _fsync_handle(fh)
            os.replace(tmp, path)
            if _durable():
                _fsync_dirname(path)
        except BaseException:
            self._discard(tmp)
            raise
        self.stats.writes += 1
        return path

    def get_local_entry(self, key: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`get_entry` but never consults peers.

        The peer-serving HTTP endpoint reads through this so two nodes
        missing the same key can never chase each other in a fetch
        loop.  For the plain disk cache it *is* ``get_entry``.
        """
        return self.get_entry(key)

    def put_entry(self, entry: Dict[str, Any]) -> str:
        """Adopt a complete entry produced elsewhere (peer fetch).

        The entry is verified exactly like a read -- format version and
        CRC32 -- before it touches disk, so a corrupt or stale payload
        from a peer can never poison the local store.  Re-adopting an
        entry that already exists is idempotent (atomic replace with
        byte-identical content).
        """
        if not isinstance(entry, dict) or not entry.get("key"):
            raise ValueError("cache entry must be a dict with a 'key'")
        if entry.get("format") != CACHE_FORMAT_VERSION:
            raise ValueError(
                f"cache entry format {entry.get('format')!r} != "
                f"{CACHE_FORMAT_VERSION}")
        if entry.get("crc32") != entry_crc32(entry):
            raise ValueError(
                f"cache entry crc32 mismatch (stored "
                f"{entry.get('crc32')!r})")
        path = self._path(entry["key"])
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
                if _durable():
                    _fsync_handle(fh)
            os.replace(tmp, path)
            if _durable():
                _fsync_dirname(path)
        except BaseException:
            self._discard(tmp)
            raise
        self.stats.writes += 1
        return path

    # ------------------------------------------------------------------
    def _corrupt_miss(self, path: str, reason: str,
                      exc: BaseException) -> None:
        """Quarantine a damaged entry and account it as a miss."""
        moved = self._quarantine(path)
        logger.warning(
            "result cache: corrupt entry at %s (%s: %s); %s",
            path, reason, exc,
            f"quarantined to {moved}" if moved else "could not move it")
        self.stats.corrupt += 1
        self.stats.misses += 1
        _CORRUPT_TOTAL.inc(reason=reason)
        obs.event("cache.corrupt", path=path, reason=reason)
        return None

    def _quarantine(self, path: str) -> Optional[str]:
        """Move ``path`` under ``.quarantine/``; None when impossible."""
        dest_dir = os.path.join(self.root, QUARANTINE_DIRNAME)
        dest = os.path.join(dest_dir, os.path.basename(path))
        try:
            os.makedirs(dest_dir, exist_ok=True)
            os.replace(path, dest)
            return dest
        except OSError:
            return None

    def quarantined(self) -> Iterator[str]:
        """Paths of quarantined entry files, sorted."""
        dest_dir = os.path.join(self.root, QUARANTINE_DIRNAME)
        try:
            names = sorted(os.listdir(dest_dir))
        except OSError:
            return
        for name in names:
            yield os.path.join(dest_dir, name)

    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            # dot-dirs are service state (.quarantine, .deadletter),
            # not key shards
            if shard.startswith(".") or not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json") and not name.startswith(".tmp-"):
                    yield name[:-len(".json")]

    def entries(self) -> Iterator[Dict[str, Any]]:
        """Every readable entry (does not touch hit/miss stats)."""
        for key in self.keys():
            try:
                with open(self._path(key), "r", encoding="utf-8") as fh:
                    yield json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue

    def size_bytes(self) -> int:
        total = 0
        for key in self.keys():
            try:
                total += os.path.getsize(self._path(key))
            except OSError:
                pass
        return total

    def purge(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for key in list(self.keys()):
            self._discard(self._path(key))
            removed += 1
        return removed

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __repr__(self):
        return (f"<ResultCache {self.root} entries={len(self)} "
                f"hits={self.stats.hits} misses={self.stats.misses}>")
