#!/usr/bin/env python
"""Chaos scenario runner + invariant checker for the durable fleet.

    PYTHONPATH=src python scripts/chaos_fleet.py                 # all
    PYTHONPATH=src python scripts/chaos_fleet.py kill_primary --jobs 8

Each scenario boots a real fleet (supervised ``python -m repro serve``
runners plus ``python -m repro router`` control plane), submits a
batch of unique jobs, injures the fleet mid-batch with a process
signal or a seeded fault plan, and then asserts the durability
invariants the journal + warm-standby design promises:

``terminal_once``     every submitted job reaches exactly one terminal
                      state (result or taxonomy error; nothing pending)
``zero_lost``         no submitted job id is forgotten by the fleet
``no_duplicate_exec`` the runners' ``jobs_run`` counters sum to the
                      batch size: recovery resubmission never executed
                      a job twice (content-hash idempotency)
``failover_happened`` the standby really is the serving primary now
``stitched_trace``    a failed-over job's ``/v1/obs/traces/{id}`` still
                      passes the whole-fleet stitched-trace validator
``rerouted``          the router rerouted work off the partitioned node
``torn_seen``         replay of the fault-torn journal skipped at least
                      one torn record (and still recovered the batch)

Scenarios are declarative data (see ``SCENARIOS``): a fleet shape, a
chaos script of ``(step, ...)`` tuples, and the invariant names to
check. Exit code 0 when every selected scenario holds every invariant.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import sys
import tempfile
import time
import urllib.request

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.abspath(os.path.join(_HERE, os.pardir, "src"))
if os.path.isdir(_SRC):
    sys.path.insert(0, _SRC)
    # the supervised `python -m repro` children need the same path
    _existing = os.environ.get("PYTHONPATH")
    os.environ["PYTHONPATH"] = (_SRC if not _existing
                                else _SRC + os.pathsep + _existing)
sys.path.insert(0, _HERE)

import validate_trace                                     # noqa: E402

from repro.client import ReproClient                      # noqa: E402
from repro.fleet import RouterProcess                     # noqa: E402
from repro.fleet.runner import RunnerProcess, free_port   # noqa: E402
from repro.server.protocol import JobNotFound             # noqa: E402
from repro.service.scheduler import (                     # noqa: E402
    JobError, JobResultPending,
)

#: wall-clock budget for one scenario's result collection
COLLECT_TIMEOUT_S = 240.0


class InvariantViolation(AssertionError):
    """A durability invariant did not hold after the chaos script."""


def _log(message: str) -> None:
    print(f"chaos_fleet: {message}", flush=True)


# ----------------------------------------------------------------------
# Fleet harness
# ----------------------------------------------------------------------

class Fleet:
    """Two runners + a journaled router (optionally with a standby)."""

    def __init__(self, workdir: str, standby: bool = True,
                 sim_latency_s: float = 0.4,
                 router_env=None):
        self.workdir = workdir
        self.journal_dir = os.path.join(workdir, "journal")
        self.router_env = dict(router_env or {})
        # pre-assign ports so each runner can name the other as its
        # cache peer (the CI fleet topology)
        ports = [free_port(), free_port()]
        urls = [f"http://127.0.0.1:{p}" for p in ports]
        self.runners = []
        for i, port in enumerate(ports):
            cache_dir = os.path.join(workdir, f"cache-{i}")
            runner = RunnerProcess(
                cache_dir=cache_dir, workers=1, port=port,
                env={"REPRO_SIM_LATENCY_S": str(sim_latency_s),
                     "REPRO_OBS_BUFFER": "4096"},
                extra_args=["--max-queue", "64",
                            "--peers", urls[1 - i]])
            self.runners.append(runner)
        self.runner_urls = urls
        for runner in self.runners:
            runner.wait_ready()
        self.primary = RouterProcess(
            self.runner_urls, journal_dir=self.journal_dir,
            node_name="primary", probe_interval_s=0.3,
            env=self.router_env)
        self.primary.wait_ready()
        self.standby = None
        if standby:
            self.standby = RouterProcess(
                self.runner_urls, journal_dir=self.journal_dir,
                node_name="standby", standby_of=self.primary.url,
                probe_interval_s=0.3)
            self.standby.wait_ready()
        self.paused = None

    # ------------------------------------------------------------------
    def endpoints(self):
        urls = [self.primary.url]
        if self.standby is not None:
            urls.append(self.standby.url)
        return urls

    def serving_url(self) -> str:
        """The router endpoint that currently answers as primary."""
        for proc in (self.primary, self.standby):
            if proc is None or not proc.alive:
                continue
            try:
                with urllib.request.urlopen(proc.url + "/healthz",
                                            timeout=2.0) as resp:
                    payload = json.load(resp)
            except (urllib.error.URLError, OSError, ValueError):
                continue
            if payload.get("role") == "primary" \
                    and not payload.get("fenced"):
                return proc.url
        raise InvariantViolation("no live router answers as primary")

    def healthz(self, url: str) -> dict:
        with urllib.request.urlopen(url + "/healthz",
                                    timeout=5.0) as resp:
            return json.load(resp)

    def metrics(self, url: str) -> str:
        with urllib.request.urlopen(url + "/metrics",
                                    timeout=5.0) as resp:
            return resp.read().decode("utf-8")

    def restart_primary(self) -> None:
        """Boot a fresh primary on the dead one's port + journal."""
        if self.primary.alive:
            self.primary.kill()
        self.primary = RouterProcess(
            self.runner_urls, port=self.primary.port,
            journal_dir=self.journal_dir, node_name="primary",
            probe_interval_s=0.3)
        self.primary.wait_ready()

    def shutdown(self) -> None:
        for proc in (self.primary, self.standby, *self.runners):
            if proc is None:
                continue
            try:
                proc.resume()          # a paused child ignores SIGTERM
                proc.stop(timeout_s=5.0)
            except Exception:
                pass


# ----------------------------------------------------------------------
# Chaos steps
# ----------------------------------------------------------------------

def _busiest_runner(fleet: Fleet):
    """The runner process holding the most router-side in-flight."""
    payload = fleet.healthz(fleet.serving_url())
    runners = (payload.get("fleet") or {}).get("runners") or []
    busiest = max(runners, key=lambda r: r.get("inflight", 0),
                  default=None)
    if busiest is None or busiest.get("inflight", 0) <= 0:
        raise InvariantViolation(f"no runner holds in-flight work: "
                                 f"{runners}")
    by_url = {r.url: r for r in fleet.runners}
    return by_url[busiest["url"]]


def run_step(fleet: Fleet, step, ctx: dict) -> None:
    name, args = step[0], step[1:]
    if name == "sleep":
        time.sleep(args[0])
    elif name == "await_inflight":
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            payload = fleet.healthz(fleet.serving_url())
            runners = (payload.get("fleet") or {}).get("runners") or []
            if sum(r.get("inflight", 0) for r in runners) > 0:
                return
            time.sleep(0.1)
        raise InvariantViolation("no job went in-flight within 30s")
    elif name == "kill_primary":
        _log(f"SIGKILL primary router (pid {fleet.primary.proc.pid})")
        fleet.primary.kill()
        ctx["primary_killed"] = True
    elif name == "restart_primary":
        _log("booting a replacement primary on the same journal")
        fleet.restart_primary()
        ctx["primary_restarted"] = True
    elif name == "pause_busiest":
        victim = _busiest_runner(fleet)
        _log(f"SIGSTOP (partition) runner {victim.url}")
        victim.pause()
        fleet.paused = victim
    elif name == "resume_paused":
        if fleet.paused is not None:
            _log(f"SIGCONT (heal) runner {fleet.paused.url}")
            fleet.paused.resume()
    else:
        raise ValueError(f"unknown chaos step {name!r}")


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------

def _metric_sum(text: str, name: str, **labels) -> float:
    """Sum every sample of ``name`` whose labels match."""
    total, seen = 0.0, False
    pattern = re.compile(rf"^{re.escape(name)}(\{{[^}}]*\}})? (\S+)$")
    for line in text.splitlines():
        match = pattern.match(line)
        if not match:
            continue
        labelstr = match.group(1) or ""
        if any(f'{k}="{v}"' not in labelstr for k, v in labels.items()):
            continue
        seen = True
        total += float(match.group(2))
    return total if seen else 0.0


def check_terminal_once(fleet, client, keys, records, ctx):
    pending = [k for k in keys if k not in records]
    if pending:
        raise InvariantViolation(
            f"{len(pending)} job(s) never reached a terminal state: "
            f"{[k[:12] for k in pending]}")
    # a terminal state must be sticky: re-reading the status cannot
    # flip a done job back to pending or to a different outcome
    for key in keys:
        status = client.status(key)
        if not status.get("done"):
            raise InvariantViolation(
                f"job {key[:12]} answered a result but /v1/jobs says "
                f"done={status.get('done')} ({status.get('status')})")
    return f"{len(keys)} job(s), each in exactly one terminal state"


def check_zero_lost(fleet, client, keys, records, ctx):
    lost = set(keys) - set(records)
    if lost:
        raise InvariantViolation(
            f"lost job(s): {sorted(k[:12] for k in lost)}")
    failed = {k: v for k, (kind, v) in records.items()
              if kind == "error"}
    if failed:
        raise InvariantViolation(
            f"job(s) ended in a non-success terminal state: "
            f"{ {k[:12]: str(v) for k, v in failed.items()} }")
    return f"0 of {len(keys)} job(s) lost"


def check_no_duplicate_exec(fleet, client, keys, records, ctx):
    runs = 0.0
    for runner in fleet.runners:
        text = fleet.metrics(runner.url)
        runs += _metric_sum(text, "repro_service_events_total",
                            event="jobs_run")
    if runs != len(keys):
        raise InvariantViolation(
            f"runners executed {runs:g} job(s) for a batch of "
            f"{len(keys)} -- duplicated (or lost) executions")
    return f"{runs:g} execution(s) for {len(keys)} job(s) (no dups)"


def check_failover_happened(fleet, client, keys, records, ctx):
    if fleet.standby is None:
        raise InvariantViolation("scenario has no standby to fail to")
    payload = fleet.healthz(fleet.standby.url)
    if payload.get("role") != "primary":
        raise InvariantViolation(
            f"standby never took over (role={payload.get('role')})")
    term = (payload.get("journal") or {}).get("term")
    failovers = _metric_sum(fleet.metrics(fleet.standby.url),
                            "repro_fleet_failovers_total")
    if failovers < 1:
        raise InvariantViolation("repro_fleet_failovers_total is 0 "
                                 "on the promoted standby")
    return f"standby promoted to primary (lease term {term})"


def check_stitched_trace(fleet, client, keys, records, ctx):
    url = fleet.serving_url()
    survivor = ReproClient(url, max_retries=2, backoff_s=0.2)
    last_error = "no job produced a stitched trace"
    for key in keys:
        try:
            trace = survivor.obs_trace(key)
        except Exception:
            continue
        path = os.path.join(fleet.workdir, f"trace-{key[:12]}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(trace, fh)
        try:
            validate_trace.validate_stitched(path)
        except SystemExit:
            last_error = f"job {key[:12]}: stitched validation failed"
            continue
        return f"job {key[:12]} stitched trace intact across failover"
    raise InvariantViolation(last_error)


def check_rerouted(fleet, client, keys, records, ctx):
    reroutes = _metric_sum(fleet.metrics(fleet.serving_url()),
                           "repro_fleet_reroutes_total")
    if reroutes < 1:
        raise InvariantViolation(
            "router never rerouted off the partitioned runner")
    return f"{reroutes:g} reroute(s) off the partitioned node"


def check_torn_seen(fleet, client, keys, records, ctx):
    torn = _metric_sum(fleet.metrics(fleet.primary.url),
                       "repro_journal_torn_records_total")
    if torn < 1:
        raise InvariantViolation(
            "replay saw no torn journal records -- the fault plan "
            "never fired; raise the rate or the batch size")
    return f"replay skipped {torn:g} torn record(s) and recovered"


INVARIANTS = {
    "terminal_once": check_terminal_once,
    "zero_lost": check_zero_lost,
    "no_duplicate_exec": check_no_duplicate_exec,
    "failover_happened": check_failover_happened,
    "stitched_trace": check_stitched_trace,
    "rerouted": check_rerouted,
    "torn_seen": check_torn_seen,
}


# ----------------------------------------------------------------------
# Scenarios (declarative)
# ----------------------------------------------------------------------

SCENARIOS = {
    "kill_primary": dict(
        doc="SIGKILL the primary router mid-batch; the warm standby "
            "takes over behind the lease with zero lost jobs, zero "
            "duplicate executions and intact stitched traces.",
        standby=True,
        chaos=[("await_inflight",), ("sleep", 1.5), ("kill_primary",)],
        invariants=("terminal_once", "zero_lost", "no_duplicate_exec",
                    "failover_happened", "stitched_trace"),
    ),
    "partition_runner": dict(
        doc="SIGSTOP the busiest runner (a netsplit, not a death); "
            "the router evicts it and reroutes its in-flight work; "
            "healing the partition later must not corrupt anything.",
        standby=False,
        chaos=[("await_inflight",), ("pause_busiest",), ("sleep", 2.0)],
        post=[("resume_paused",)],
        invariants=("terminal_once", "zero_lost", "rerouted"),
    ),
    "torn_journal": dict(
        doc="A seeded journal.write fault plan tears records while "
            "the primary journals; SIGKILL it mid-batch and restart "
            "on the same journal -- replay must skip the torn records "
            "and still recover every job.",
        standby=False,
        router_env={"REPRO_FAULTS":
                    "seed=11,rate=0.25,sites=journal.write"},
        chaos=[("await_inflight",), ("sleep", 1.0), ("kill_primary",),
               ("restart_primary",)],
        invariants=("terminal_once", "zero_lost", "torn_seen"),
    ),
}


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def collect_results(client: ReproClient, keys, specs,
                    deadline_s: float):
    """Poll every job to a terminal answer (result or terminal error).

    ``specs`` maps each job id back to its submit kwargs, so a job the
    fleet truly lost (torn journal record AND dead runner) can be
    resubmitted -- the content hash guarantees the same id.
    """
    pending = set(keys)
    records = {}
    deadline = time.monotonic() + deadline_s
    while pending and time.monotonic() < deadline:
        for key in sorted(pending):
            try:
                records[key] = ("ok", client.result(key))
            except JobResultPending:
                continue
            except JobNotFound:
                # a crash tore this job's journal record before the
                # placement was durable: resubmit (content-hash
                # idempotent -- a completed job resolves from cache)
                resubmitted = client.submit("kmeans", "informed",
                                            **specs[key])
                assert resubmitted["id"] == key, \
                    f"resubmit changed the job id for {key[:12]}"
                continue
            except JobError as exc:
                records[key] = ("error", exc)
            pending.discard(key)
        if pending:
            time.sleep(0.2)
    return records


def run_scenario(name: str, jobs: int, keep: bool) -> bool:
    spec = SCENARIOS[name]
    workdir = tempfile.mkdtemp(prefix=f"chaos-{name}-")
    _log(f"=== scenario {name}: {spec['doc']}")
    fleet = Fleet(workdir, standby=spec.get("standby", False),
                  router_env=spec.get("router_env"))
    ok = False
    try:
        client = ReproClient(fleet.endpoints(), max_retries=8,
                             backoff_s=0.3, poll_interval_s=0.1)
        specs = {}
        keys = []
        for i in range(jobs):
            kwargs = {"intensity_threshold": round(0.25 + i * 0.01, 4)}
            key = client.submit("kmeans", "informed", **kwargs)["id"]
            keys.append(key)
            specs[key] = kwargs
        if len(set(keys)) != jobs:
            raise InvariantViolation("submitted job ids not unique")
        _log(f"submitted {jobs} unique job(s)")
        ctx: dict = {}
        for step in spec["chaos"]:
            run_step(fleet, step, ctx)
        records = collect_results(client, keys, specs,
                                  COLLECT_TIMEOUT_S)
        for step in spec.get("post", ()):
            run_step(fleet, step, ctx)
        failures = []
        for inv in spec["invariants"]:
            try:
                note = INVARIANTS[inv](fleet, client, keys, records,
                                       ctx)
            except InvariantViolation as exc:
                failures.append((inv, str(exc)))
                _log(f"  FAIL {inv}: {exc}")
            else:
                _log(f"  ok   {inv}: {note}")
        ok = not failures
        _log(f"=== scenario {name}: {'PASS' if ok else 'FAIL'}")
    finally:
        fleet.shutdown()
        if keep:
            _log(f"artifacts kept at {workdir}")
        else:
            shutil.rmtree(workdir, ignore_errors=True)
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("scenarios", nargs="*", metavar="SCENARIO",
                        help=f"subset to run (default: all of "
                             f"{', '.join(SCENARIOS)})")
    parser.add_argument("--jobs", type=int, default=12,
                        help="batch size per scenario (default 12)")
    parser.add_argument("--keep", action="store_true",
                        help="keep each scenario's workdir (journals, "
                             "traces, caches) for inspection")
    args = parser.parse_args(argv)
    unknown = set(args.scenarios) - set(SCENARIOS)
    if unknown:
        parser.error(f"unknown scenario(s) {sorted(unknown)}; "
                     f"choose from {', '.join(SCENARIOS)}")
    names = args.scenarios or list(SCENARIOS)
    failed = [name for name in names
              if not run_scenario(name, args.jobs, args.keep)]
    if failed:
        _log(f"FAILED scenario(s): {', '.join(failed)}")
        return 1
    _log(f"all {len(names)} scenario(s) passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
