#!/usr/bin/env python
"""CI validator for ``--trace-out`` / ``--metrics-out`` artifacts.

    python scripts/validate_trace.py TRACE.json [METRICS.prom]

Checks the Chrome trace is well-formed and Perfetto-loadable (complete
``X`` events with non-negative, non-decreasing timestamps and span ids
in ``args``), that the span hierarchy nests at least ``--min-depth``
levels (default 3), and -- when a metrics dump is given -- that the
Prometheus text parses and carries the expected counter families.

Exit code 0 on success; prints the first violation and exits 1
otherwise.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'               # metric name
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r' -?[0-9.einfEINF+-]+$')

#: counter families an instrumented flow run must emit
REQUIRED_METRICS = (
    "repro_exec_total",
    "repro_profile_cache_total",
)


def fail(message: str) -> "NoReturn":  # noqa: F821 (py<3.11 typing)
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def validate_trace(path: str, min_depth: int,
                   require_spans=()) -> None:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        fail(f"{path}: not readable JSON ({exc})")
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    xs = [e for e in events if e.get("ph") == "X"]
    if not xs:
        fail(f"{path}: no complete ('X') events")
    last_ts = None
    for i, e in enumerate(xs):
        for key in ("name", "ts", "dur", "pid", "tid", "args"):
            if key not in e:
                fail(f"{path}: X event #{i} missing {key!r}: {e}")
        if e["ts"] < 0:
            fail(f"{path}: negative ts on {e['name']!r}")
        if e["dur"] < 0:
            fail(f"{path}: negative dur on {e['name']!r}")
        if last_ts is not None and e["ts"] < last_ts:
            fail(f"{path}: X event timestamps not sorted at "
                 f"{e['name']!r} ({e['ts']} < {last_ts})")
        last_ts = e["ts"]
        if not e["args"].get("span_id"):
            fail(f"{path}: X event {e['name']!r} lacks args.span_id")
    parents = {e["args"]["span_id"]: e["args"].get("parent_id")
               for e in xs}
    deepest = 0
    for span_id in parents:
        depth, cursor = 0, span_id
        while cursor is not None and depth <= len(parents):
            depth += 1
            cursor = parents.get(cursor)
        deepest = max(deepest, depth)
    if deepest < min_depth:
        fail(f"{path}: span nesting {deepest} < required {min_depth}")
    names = {e["name"] for e in xs}
    for name in require_spans:
        if name not in names:
            fail(f"{path}: required span {name!r} missing "
                 f"(have: {sorted(names)})")
    instants = sum(1 for e in events if e.get("ph") == "i")
    print(f"validate_trace: {path}: {len(xs)} spans "
          f"({instants} instant events), depth {deepest}: OK")


def validate_stitched(path: str, skew_tolerance_us: float = 10_000.0
                      ) -> None:
    """Whole-fleet trace invariants for ``/v1/obs/traces/{job_id}``.

    A stitched trace must be ONE trace: a single trace id, exactly one
    root span, every other span parent-linked to a span *in the same
    file* (no dangling parents -- that's the cross-node propagation
    contract), spans from at least two distinct processes with at
    least one parent link crossing a process boundary, and -- after
    the router's clock alignment -- no child starting more than the
    skew tolerance before its parent.
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    xs = [e for e in data.get("traceEvents", ())
          if e.get("ph") == "X"]
    if not xs:
        fail(f"{path}: stitched trace has no spans")
    trace_ids = {e["args"].get("trace_id") for e in xs}
    trace_ids.discard(None)
    if len(trace_ids) != 1:
        fail(f"{path}: expected exactly one trace id, got "
             f"{sorted(map(str, trace_ids))}")
    by_id = {e["args"]["span_id"]: e for e in xs}
    roots = [e for e in xs if e["args"].get("parent_id") is None]
    if len(roots) != 1:
        fail(f"{path}: expected exactly one root span, got "
             f"{[e['name'] for e in roots]}")
    dangling = [e["name"] for e in xs
                if e["args"].get("parent_id") is not None
                and e["args"]["parent_id"] not in by_id]
    if dangling:
        fail(f"{path}: spans with parents missing from the stitched "
             f"trace: {sorted(set(dangling))}")
    pids = {e["pid"] for e in xs}
    if len(pids) < 2:
        fail(f"{path}: stitched trace covers only {len(pids)} "
             f"process(es); expected spans from >= 2 nodes")
    cross = [e for e in xs
             if e["args"].get("parent_id") is not None
             and by_id[e["args"]["parent_id"]]["pid"] != e["pid"]]
    if not cross:
        fail(f"{path}: no parent link crosses a process boundary "
             f"(propagation broken?)")
    for e in xs:
        parent_id = e["args"].get("parent_id")
        if parent_id is None:
            continue
        parent = by_id[parent_id]
        if e["ts"] < parent["ts"] - skew_tolerance_us:
            fail(f"{path}: child {e['name']!r} starts "
                 f"{(parent['ts'] - e['ts']) / 1e3:.1f} ms before its "
                 f"parent {parent['name']!r} (clock alignment broken)")
    print(f"validate_trace: {path}: stitched OK -- {len(xs)} spans, "
          f"{len(pids)} processes, {len(cross)} cross-process link(s), "
          f"root {roots[0]['name']!r}")


def validate_metrics(path: str, require=(), defaults=True) -> None:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as exc:
        fail(f"{path}: unreadable ({exc})")
    typed = set()
    samples = 0
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "untyped"):
                fail(f"{path}:{lineno}: malformed TYPE line: {line}")
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        if not SAMPLE_RE.match(line):
            fail(f"{path}:{lineno}: unparseable sample: {line}")
        samples += 1
    if not samples:
        fail(f"{path}: no samples")
    required = (*REQUIRED_METRICS, *require) if defaults else tuple(require)
    for name in required:
        if name not in typed:
            fail(f"{path}: required metric {name!r} missing "
                 f"(have: {sorted(typed)})")
    print(f"validate_trace: {path}: {samples} samples, "
          f"{len(typed)} metrics: OK")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace-event JSON")
    parser.add_argument("metrics", nargs="?", default=None,
                        help="Prometheus text dump (optional)")
    parser.add_argument("--min-depth", type=int, default=3,
                        help="required span nesting depth (default 3)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="METRIC",
                        help="additional metric family that must be "
                             "present (repeatable; chaos runs require "
                             "repro_faults_injected_total)")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME",
                        help="span name that must appear in the trace "
                             "(repeatable; DSE runs require dse.sweep)")
    parser.add_argument("--stitched", action="store_true",
                        help="also enforce whole-fleet stitched-trace "
                             "invariants: one trace id, one root, no "
                             "dangling parents, >= 2 processes with a "
                             "cross-process parent link, aligned clocks")
    parser.add_argument("--skew-tolerance-ms", type=float, default=10.0,
                        help="with --stitched: how far (ms) a child may "
                             "start before its parent (default 10)")
    parser.add_argument("--no-defaults", action="store_true",
                        help="skip the flow-run metric families and "
                             "check only --require entries (for dumps "
                             "from processes that run no flows, e.g. "
                             "the fleet router)")
    args = parser.parse_args(argv)
    validate_trace(args.trace, args.min_depth,
                   require_spans=args.require_span)
    if args.stitched:
        validate_stitched(args.trace,
                          skew_tolerance_us=args.skew_tolerance_ms * 1e3)
    if args.metrics:
        validate_metrics(args.metrics, require=args.require,
                         defaults=not args.no_defaults)
    elif args.require:
        fail("--require needs a metrics dump argument")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
